"""Tests for hypercube membership dynamics (the paper's future work) and the
ghost-vertex degradation result that motivates immediate repair."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import ConstructionError
from repro.hypercube.cube import CubeExchange
from repro.hypercube.dynamics import CascadeMembership, optimal_delay_for


class TestGhostDegradation:
    def test_ghost_port_loses_packets_forever(self):
        # Vertex 1 = 2^0 is an injection port; with it vacant, packets
        # injected in slots ≡ 0 (mod k) reach nobody, ever.
        cube = CubeExchange(3, ghosts=frozenset({1}))
        delivered: set[int] = set()
        for t in range(60):
            for tr in cube.step(inject=t):
                delivered.add(tr.packet)
        horizon = 40
        lost = [p for p in range(horizon) if p % 3 == 0 and p not in delivered]
        assert lost, "port-slot packets must be lost with a ghost port"

    def test_any_ghost_starves_its_neighbors(self):
        # The cube's send budget exactly matches the consumption demand, so a
        # vacancy removes two transmissions per cycle (the ghost's pair idles)
        # but only one consumer: the ghost's neighbors fall behind without
        # bound.  Even a non-port vacancy (vertex 3) breaks real-time
        # delivery — the strongest argument for immediate membership repair.
        cube = CubeExchange(3, ghosts=frozenset({3}))
        arrivals = {v: {} for v in range(1, 8) if v != 3}
        for t in range(90):
            for tr in cube.step(inject=t):
                arrivals[tr.receiver].setdefault(tr.packet, t)
            port = 1 << (t % 3)
            if port in arrivals:
                arrivals[port].setdefault(t, t)

        def frontier(arr, upto):
            f = -1
            while f + 1 in arr and arr[f + 1] <= upto:
                f += 1
            return f

        lag_mid = max(40 - frontier(arr, 40) for arr in arrivals.values())
        lag_end = max(80 - frontier(arr, 80) for arr in arrivals.values())
        assert lag_end > lag_mid  # the worst member keeps falling behind

    def test_ghost_validation(self):
        with pytest.raises(ConstructionError):
            CubeExchange(3, ghosts=frozenset({0}))
        with pytest.raises(ConstructionError):
            CubeExchange(3, ghosts=frozenset({8}))


class TestCascadeMembershipBasics:
    def test_initial_assignment_is_optimal(self):
        membership = CascadeMembership(100)
        membership.verify()
        assert membership.num_nodes == 100
        assert membership.worst_case_delay() == optimal_delay_for(100)
        assert membership.delay_penalty() == 0

    def test_assignment_lookup(self):
        membership = CascadeMembership(10)
        index, vertex = membership.assignment_of(1)
        assert index == 0 and vertex == 1
        with pytest.raises(ConstructionError):
            membership.assignment_of(999)

    def test_unknown_strategy(self):
        with pytest.raises(ConstructionError):
            CascadeMembership(10, strategy="magic")

    def test_cannot_remove_last(self):
        membership = CascadeMembership(1)
        with pytest.raises(ConstructionError):
            membership.leave(1)


class TestFillFromTail:
    def test_join_opens_singleton_cube(self):
        membership = CascadeMembership(100)  # cubes 63+31+3+3: all full
        node, event = membership.join()
        membership.verify()
        assert event.relocated == frozenset()
        assert membership.num_nodes == 101
        assert event.cubes_after[-1] == 1

    def test_leave_from_head_backfills_and_replans_tail(self):
        membership = CascadeMembership(100)  # tail cube: k=2 (3 members)
        event = membership.leave(1)  # vertex in the big cube
        membership.verify()
        # One donor moved, plus the tail cube's 2 survivors re-planned as
        # two singleton cubes (their neighbor structure changed).
        assert 1 <= len(event.relocated) <= 3
        assert membership.num_nodes == 99

    def test_leave_from_singleton_tail_relocates_none(self):
        membership = CascadeMembership(4)  # cubes: k=2 (3 nodes) + k=1 (1 node)
        tail_node = membership.assignments[-1][1]
        event = membership.leave(tail_node)
        membership.verify()
        assert event.relocated == frozenset()
        assert membership.cube_dims == [2]

    def test_cubes_always_full(self):
        membership = CascadeMembership(20)
        membership.leave(3)
        membership.join()
        membership.leave(7)
        for k, cube in zip(membership.cube_dims, membership.assignments, strict=True):
            assert len(cube) == (1 << k) - 1

    def test_delay_drifts_but_compact_restores(self):
        membership = CascadeMembership(40)
        for _ in range(20):
            membership.join()
        membership.verify()
        # 20 unplanned k=1 tail cubes cost real delay vs a rebuild.
        assert membership.delay_penalty() > 0
        event = membership.compact()
        membership.verify()
        assert membership.delay_penalty() == 0
        assert event.operation == "compact"
        assert membership.num_nodes == 60


class TestRebuild:
    def test_rebuild_keeps_optimal_delay(self):
        membership = CascadeMembership(40, strategy="rebuild")
        for _ in range(20):
            membership.join()
        for victim in (3, 17, 25):
            membership.leave(victim)
        membership.verify()
        assert membership.delay_penalty() == 0

    def test_rebuild_relocates_many(self):
        # 126 = [k=6, k=6] but 127 = [k=7]: the second half of the population
        # moves into the grown first cube.
        membership = CascadeMembership(126, strategy="rebuild")
        _, event = membership.join()
        assert event.cubes_after == (7,)
        assert len(event.relocated) > 20

    def test_rebuild_can_be_free(self):
        # 63 = [k=6] grows to 64 = [k=6, k=1]: the old prefix is untouched.
        membership = CascadeMembership(63, strategy="rebuild")
        _, event = membership.join()
        assert event.relocated == frozenset()

    def test_join_not_counted_as_relocated(self):
        membership = CascadeMembership(10, strategy="rebuild")
        node, event = membership.join()
        assert node not in event.relocated


class TestStrategyComparison:
    @given(st.integers(0, 2**16))
    @settings(max_examples=15, deadline=None)
    def test_fill_relocations_bounded_by_tail_cube(self, seed):
        import numpy as np

        rng = np.random.default_rng(seed)
        membership = CascadeMembership(30)
        for _ in range(25):
            tail_size = (1 << membership.cube_dims[-1]) - 1
            if rng.random() < 0.5 and membership.num_nodes > 2:
                victim = int(rng.choice(sorted(membership.members())))
                event = membership.leave(victim)
                assert len(event.relocated) <= tail_size
            else:
                _, event = membership.join()
                assert event.relocated == frozenset()
            membership.verify()

    def test_tradeoff_direction(self):
        # Same event sequence: fill-from-tail disrupts less, rebuild keeps
        # delays optimal.
        fill = CascadeMembership(50)
        rebuild = CascadeMembership(50, strategy="rebuild")
        for membership in (fill, rebuild):
            for _ in range(12):
                membership.join()
            for victim in (5, 20, 35):
                membership.leave(victim)
        fill_moves = sum(len(e.relocated) for e in fill.history)
        rebuild_moves = sum(len(e.relocated) for e in rebuild.history)
        assert fill_moves < rebuild_moves
        assert rebuild.delay_penalty() == 0
        assert fill.delay_penalty() >= rebuild.delay_penalty()
