"""REP008 — nondeterminism taint from RNG/clock sources into result sinks.

The paper's delay/buffer numbers are only reproducible if every recorded
value is a function of the spec and its seed.  REP001/REP002 ban the raw
call sites; this pass upgrades them to a flow check: a *source* value
(unseeded RNG draw, wall-clock read) that propagates **through
assignments** into a *sink* (metric/event emission, ledger record, bench
history) is flagged even when the call site and the sink are lines apart.

Sources — calls the model resolves to: ``time.time/monotonic/
perf_counter[_ns]``, ``datetime.now/utcnow/today``, any ``random.*`` or
``numpy.random.*`` draw (``Random(seed)`` / ``default_rng(seed)`` *with* a
seed argument are fine), ``os.urandom``, ``uuid.uuid4``, ``secrets.*``.

Sinks — calls that persist or export a value: registry emissions
(``.counter/.gauge/.histogram/.sketch`` and the value-carrying
``.observe/.set/.inc`` on their handles), event emissions
(``.emit/._emit``), ledger writes (``append_bench_history``,
``run_record``, ``.append`` on a local ``RunLedger(...)``).

Propagation is an intra-function fixpoint over assignments: a name
assigned from an expression containing a source call (or an
already-tainted name) becomes tainted; a sink whose argument expression
mentions a tainted name (or a source call directly) is a violation.

The sanctioned boundary is :mod:`repro.obs`: modules under an ``obs``
package are skipped entirely (their job *is* wrapping the clock — same
exemption REP002 grants), and values produced by the obs wrappers
(``wall_time_s``, ``Timer``) are untainted by construction since the
wrappers, not the raw primitives, appear at the call site.
"""

from __future__ import annotations

import ast

from repro.check.lint import LintViolation
from repro.check.model import ModuleInfo, ProjectModel

__all__ = ["RULE", "DESCRIPTION", "analyze"]

RULE = "REP008"
DESCRIPTION = (
    "unseeded-RNG/wall-clock value flows into a result, metric, ledger, "
    "or cache-token sink"
)

_CLOCK_FNS = frozenset(
    {"time", "monotonic", "perf_counter", "time_ns", "monotonic_ns",
     "perf_counter_ns"}
)
_DATETIME_FNS = frozenset({"now", "utcnow", "today"})
#: ``.set``/``.inc`` are the value-carrying calls on gauge/counter handles
#: (``registry.gauge(NAME).set(value)``), so they are sinks alongside the
#: name-carrying emission calls themselves.
_SINK_METHODS = frozenset(
    {"counter", "gauge", "histogram", "sketch", "observe", "emit", "_emit",
     "set", "inc"}
)
_SINK_FUNCTIONS = frozenset({"append_bench_history", "run_record"})


def _dotted_parts(func: ast.expr) -> list[str] | None:
    parts: list[str] = []
    while isinstance(func, ast.Attribute):
        parts.append(func.attr)
        func = func.value
    if not isinstance(func, ast.Name):
        return None
    parts.append(func.id)
    parts.reverse()
    return parts


def _source_reason(call: ast.Call, module: ModuleInfo) -> str | None:
    """Why ``call`` is a nondeterminism source, or None if it isn't."""
    func = call.func
    if isinstance(func, ast.Name):
        origin = module.from_imports.get(func.id)
        if origin is None:
            return None
        source_module, original = origin
        if source_module == "time" and original in _CLOCK_FNS:
            return f"time.{original}() at line {call.lineno}"
        if source_module == "random":
            if original == "Random" and (call.args or call.keywords):
                return None  # seeded Random(seed) is deterministic
            return f"random.{original}() at line {call.lineno}"
        if source_module in ("numpy.random", "np.random"):
            if original == "default_rng" and (call.args or call.keywords):
                return None  # seeded generator
            return f"numpy.random.{original}() at line {call.lineno}"
        if source_module == "os" and original == "urandom":
            return f"os.urandom() at line {call.lineno}"
        if source_module == "uuid" and original == "uuid4":
            return f"uuid.uuid4() at line {call.lineno}"
        if source_module == "secrets":
            return f"secrets.{original}() at line {call.lineno}"
        return None
    parts = _dotted_parts(func)
    if parts is None or len(parts) < 2:
        return None
    root, leaf = parts[0], parts[-1]
    target = module.imports.get(root)
    dotted = ".".join(parts)
    if target == "time" and leaf in _CLOCK_FNS:
        return f"{dotted}() at line {call.lineno}"
    if target == "datetime" and leaf in _DATETIME_FNS:
        return f"{dotted}() at line {call.lineno}"
    if target == "random":
        if leaf in ("Random", "seed") and (call.args or call.keywords):
            return None
        return f"{dotted}() at line {call.lineno}"
    if target == "numpy" and "random" in parts[1:]:
        if leaf == "default_rng" and (call.args or call.keywords):
            return None
        return f"{dotted}() at line {call.lineno}"
    if target == "os" and leaf == "urandom":
        return f"{dotted}() at line {call.lineno}"
    if target == "uuid" and leaf == "uuid4":
        return f"{dotted}() at line {call.lineno}"
    if target == "secrets":
        return f"{dotted}() at line {call.lineno}"
    # from datetime import datetime; datetime.now()
    origin = module.from_imports.get(root)
    if origin == ("datetime", "datetime") and leaf in _DATETIME_FNS:
        return f"datetime.{leaf}() at line {call.lineno}"
    return None


def _expr_reason(
    expr: ast.expr, taint: dict[str, str], module: ModuleInfo
) -> str | None:
    """The taint reason carried by ``expr``, if any."""
    for node in ast.walk(expr):
        if isinstance(node, ast.Call):
            reason = _source_reason(node, module)
            if reason is not None:
                return reason
        if isinstance(node, ast.Name) and node.id in taint:
            return taint[node.id]
    return None


def _target_names(target: ast.expr) -> list[str]:
    if isinstance(target, ast.Name):
        return [target.id]
    if isinstance(target, (ast.Tuple, ast.List)):
        names: list[str] = []
        for element in target.elts:
            names.extend(_target_names(element))
        return names
    return []


def _function_taint(
    fn_node: ast.AST, module: ModuleInfo
) -> dict[str, str]:
    """Fixpoint of taint over the function's assignments: name -> reason."""
    assigns: list[tuple[list[str], ast.expr]] = []
    for node in ast.walk(fn_node):
        if isinstance(node, ast.Assign):
            names: list[str] = []
            for target in node.targets:
                names.extend(_target_names(target))
            if names:
                assigns.append((names, node.value))
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            if node.value is not None:
                names = _target_names(node.target)
                if names:
                    assigns.append((names, node.value))
        elif isinstance(node, ast.NamedExpr):
            assigns.append((_target_names(node.target), node.value))

    taint: dict[str, str] = {}
    changed = True
    while changed:
        changed = False
        for names, value in assigns:
            reason = _expr_reason(value, taint, module)
            if reason is None:
                continue
            for name in names:
                if name not in taint:
                    taint[name] = reason
                    changed = True
    return taint


def _ledger_locals(fn_node: ast.AST) -> set[str]:
    """Locals bound to a ``RunLedger(...)`` construction."""
    bound: set[str] = set()
    for node in ast.walk(fn_node):
        if (
            isinstance(node, ast.Assign)
            and isinstance(node.value, ast.Call)
            and isinstance(node.value.func, ast.Name)
            and node.value.func.id == "RunLedger"
        ):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    bound.add(target.id)
    return bound


def _sink_kind(call: ast.Call, ledger_locals: set[str]) -> str | None:
    func = call.func
    if isinstance(func, ast.Attribute):
        if func.attr in _SINK_METHODS:
            return f".{func.attr}()"
        if (
            func.attr == "append"
            and isinstance(func.value, ast.Name)
            and func.value.id in ledger_locals
        ):
            return "ledger append()"
        if func.attr in _SINK_FUNCTIONS:
            return f"{func.attr}()"
    elif isinstance(func, ast.Name) and func.id in _SINK_FUNCTIONS:
        return f"{func.id}()"
    return None


def _is_obs_module(module: ModuleInfo) -> bool:
    return "obs" in module.name.split(".")


def analyze(model: ProjectModel) -> list[LintViolation]:
    violations: list[LintViolation] = []
    for module in model:
        if _is_obs_module(module):
            continue  # the sanctioned clock/RNG wrapper boundary
        for fn in module.functions.values():
            taint = _function_taint(fn.node, module)
            ledgers = _ledger_locals(fn.node)
            for node in ast.walk(fn.node):
                if not isinstance(node, ast.Call):
                    continue
                sink = _sink_kind(node, ledgers)
                if sink is None:
                    continue
                for arg in (*node.args, *(kw.value for kw in node.keywords)):
                    reason = _expr_reason(arg, taint, module)
                    if reason is not None:
                        violations.append(LintViolation(
                            rule=RULE, path=module.path,
                            line=node.lineno, col=node.col_offset,
                            message=(
                                f"nondeterministic value from {reason} "
                                f"reaches {sink} sink in '{fn.qualname}'; "
                                "derive it from the spec/seed or go "
                                "through repro.obs wrappers"
                            ),
                        ))
                        break
    return violations
