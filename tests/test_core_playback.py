"""Unit tests for repro.core.playback (delay/buffer from arrival traces)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.playback import (
    buffer_occupancy_series,
    buffer_peak,
    earliest_safe_start,
    hiccup_count,
    hiccup_packets,
    summarize_playback,
)


class TestEarliestSafeStart:
    def test_in_order_arrivals(self):
        # Packet j arrives in slot j: consuming at D = 1 tracks arrivals exactly.
        arrivals = {j: j for j in range(10)}
        assert earliest_safe_start(arrivals) == 1

    def test_paper_node1_example(self):
        # Paper §2.3: node 1 receives packets 0, 1, 2 in slots 0, 2, 1.
        arrivals = {0: 0, 1: 2, 2: 1}
        assert earliest_safe_start(arrivals) == 2

    def test_late_first_packet_dominates(self):
        arrivals = {0: 9, 1: 10, 2: 11}
        assert earliest_safe_start(arrivals) == 10

    def test_single_packet(self):
        assert earliest_safe_start({0: 5}) == 6

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            earliest_safe_start({})

    def test_non_prefix_trace_rejected(self):
        with pytest.raises(ValueError, match="prefix"):
            earliest_safe_start({1: 0, 2: 1})

    def test_gap_in_trace_rejected(self):
        with pytest.raises(ValueError, match="missing"):
            earliest_safe_start({0: 0, 2: 1})

    @given(
        st.dictionaries(
            st.integers(0, 30),
            st.integers(0, 200),
            min_size=1,
        ).map(lambda d: {i: s for i, (_, s) in enumerate(sorted(d.items()))})
    )
    def test_start_is_hiccup_free_and_minimal(self, arrivals):
        start = earliest_safe_start(arrivals)
        assert hiccup_count(arrivals, start) == 0
        assert start >= 1
        if start > 1:
            assert hiccup_count(arrivals, start - 1) > 0


class TestHiccups:
    def test_no_hiccups_when_started_late(self):
        arrivals = {0: 3, 1: 4, 2: 5}
        assert hiccup_packets(arrivals, 10) == []

    def test_specific_misses(self):
        arrivals = {0: 0, 1: 5, 2: 2}
        # Start delay 1: packet j consumed at end of slot j.
        # Packet 1's deadline is slot 1 (arrives 5: miss); packet 2's
        # deadline is slot 2 (arrives 2: on time, boundary).
        assert hiccup_packets(arrivals, 1) == [1]
        assert hiccup_count(arrivals, 1) == 1

    def test_boundary_arrival_is_not_hiccup(self):
        # Arriving in the consumption slot itself is on time (consumed at end).
        arrivals = {0: 0, 1: 1}
        assert hiccup_packets(arrivals, 1) == []


class TestBufferOccupancy:
    def test_in_order_stream_holds_one(self):
        # Packet j arrives in slot j and is played the same slot: it still
        # transits the buffer, so occupancy is exactly 1 every slot.
        arrivals = {j: j for j in range(6)}
        series = buffer_occupancy_series(arrivals, 1, horizon=6)
        assert all(v == 1 for v in series)

    def test_prebuffered_burst(self):
        # Three packets arrive in slot 0; consumption drains one per slot.
        arrivals = {0: 0, 1: 0, 2: 0}
        series = buffer_occupancy_series(arrivals, 1, horizon=4)
        assert series == [3, 2, 1, 0]

    def test_paper_node1_buffer_under_paper_start(self):
        # With the paper's start rule a(1) = 3, node 1 buffers all of 0, 1, 2.
        arrivals = {0: 0, 1: 2, 2: 1}
        assert buffer_peak(arrivals, 3) == 3

    def test_peak_with_optimal_start_is_smaller(self):
        arrivals = {0: 0, 1: 2, 2: 1}
        assert buffer_peak(arrivals, earliest_safe_start(arrivals)) == 2

    def test_horizon_truncates(self):
        arrivals = {0: 0, 1: 0}
        assert buffer_occupancy_series(arrivals, 5, horizon=1) == [2]

    def test_hiccup_start_clamps_consumption(self):
        # Start 1 but packet 0 arrives at slot 4: consumed on arrival.
        arrivals = {0: 4}
        series = buffer_occupancy_series(arrivals, 1, horizon=6)
        assert series == [0, 0, 0, 0, 1, 0]

    @given(
        st.lists(st.integers(0, 50), min_size=1, max_size=25).map(
            lambda slots: dict(enumerate(sorted(slots)))
        ),
        st.integers(1, 60),
    )
    def test_occupancy_never_negative(self, arrivals, start):
        series = buffer_occupancy_series(arrivals, start)
        assert all(v >= 0 for v in series)

    @given(
        st.lists(st.integers(0, 50), min_size=1, max_size=25).map(
            lambda slots: dict(enumerate(sorted(slots)))
        )
    )
    def test_later_start_never_shrinks_peak(self, arrivals):
        start = earliest_safe_start(arrivals)
        assert buffer_peak(arrivals, start) <= buffer_peak(arrivals, start + 5)


class TestSummary:
    def test_summary_fields(self):
        arrivals = {0: 2, 1: 3, 2: 4}
        summary = summarize_playback(arrivals)
        assert summary.startup_delay == 3
        assert summary.first_arrival_slot == 2
        assert summary.packets_observed == 3
        assert summary.buffer_peak >= 0
