"""Extension: heterogeneous deployments — per-cluster scheme choice.

The paper presents both intra-cluster schemes over the same backbone τ; in a
real deployment the choice is per cluster (RAM-rich PoPs vs constrained edge
boxes).  This bench streams through all-tree, all-cube, and mixed
deployments of the same population, confirming each cluster keeps its
scheme's QoS signature end to end.
"""

from __future__ import annotations

from conftest import report

from repro.cluster.protocol import ClusteredStreamingProtocol
from repro.core.engine import simulate
from repro.core.metrics import truncate_arrivals
from repro.core.playback import buffer_peak, earliest_safe_start
from repro.reporting.tables import format_table

SIZES = [20, 20, 20, 20]
PACKETS = 10


def measure(schemes):
    protocol = ClusteredStreamingProtocol(
        SIZES,
        source_degree=3,
        degree=3,
        inter_cluster_latency=4,
        cluster_schemes=schemes,
    )
    trace = simulate(protocol, protocol.slots_for_packets(PACKETS))
    rows = []
    for cluster, layout in enumerate(protocol.layouts):
        delays, buffers = [], []
        for node in layout.receiver_range:
            arrivals = truncate_arrivals(dict(trace.arrivals(node)), PACKETS)
            start = earliest_safe_start(arrivals)
            delays.append(start)
            buffers.append(buffer_peak(arrivals, start))
        rows.append(
            (protocol.cluster_schemes[cluster], cluster, max(delays),
             max(buffers))
        )
    return rows


def run():
    all_tree = measure("multi-tree")
    all_cube = measure("hypercube")
    mixed = measure(["multi-tree", "hypercube", "multi-tree", "hypercube"])
    return all_tree, all_cube, mixed


def test_mixed_cluster_deployments(benchmark):
    all_tree, all_cube, mixed = benchmark.pedantic(run, rounds=1, iterations=1)
    # Scheme signatures survive the backbone: hypercube clusters keep tiny
    # buffers; tree clusters buffer more.
    for scheme, _, _, max_buffer in all_cube:
        assert max_buffer <= 2
    assert any(buffer > 2 for _, _, _, buffer in all_tree)
    for scheme, _, _, max_buffer in mixed:
        if scheme == "hypercube":
            assert max_buffer <= 2
    rows = [("all multi-tree", *row[1:]) for row in all_tree]
    rows += [("all hypercube", *row[1:]) for row in all_cube]
    rows += [(f"mixed ({row[0]})", *row[1:]) for row in mixed]
    text = format_table(
        ["deployment", "cluster", "max delay", "max buffer"],
        rows,
        title=(
            "Heterogeneous deployments over one backbone "
            "(K=4 x 20 receivers, D=3, d=3, T_c=4)"
        ),
    )
    report("mixed_clusters", text)
