"""Baseline overlays from the paper's introduction (chain, single tree)."""

from repro.baselines.chain import (
    ChainProtocol,
    chain_average_delay,
    chain_delay,
    chain_worst_delay,
)
from repro.baselines.gossip import RandomGossipProtocol
from repro.baselines.single_tree import (
    SingleTreeProtocol,
    single_tree_depth,
    single_tree_worst_delay,
    sustainable_rate,
    wasted_upload_fraction,
)

__all__ = [
    "ChainProtocol",
    "RandomGossipProtocol",
    "SingleTreeProtocol",
    "chain_average_delay",
    "chain_delay",
    "chain_worst_delay",
    "single_tree_depth",
    "single_tree_worst_delay",
    "sustainable_rate",
    "wasted_upload_fraction",
]
