"""The multi-tree forest: ``d`` interior-disjoint trees plus their invariants.

A :class:`MultiTreeForest` bundles the ``d`` trees of either construction with
the group partition that produced them and exposes the paper's structural
invariants as checkable predicates:

* **interior-disjointness** — no node is interior in more than one tree (and
  every interior node has exactly ``d`` children there);
* **position congruence** — no node occupies two positions congruent modulo
  ``d`` across trees, the condition making the round-robin schedule
  receive-collision-free;
* **dummy leaves** — padding nodes appear only in leaf positions;
* **bounded neighbors** — each node communicates with at most ``2d`` others
  (``d`` parents plus ``d`` children; the paper's ``O(d)`` claim).
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.errors import ConstructionError
from repro.trees.greedy import build_greedy_trees
from repro.trees.groups import GroupPartition
from repro.trees.structured import build_structured_trees
from repro.trees.tree import StreamTree

__all__ = ["MultiTreeForest", "Construction"]

#: Source node id used by the multi-tree protocols.
SOURCE_ID = 0

Construction = str  # "structured" | "greedy"

_BUILDERS = {
    "structured": build_structured_trees,
    "greedy": build_greedy_trees,
}


class MultiTreeForest:
    """``d`` interior-disjoint streaming trees over receivers ``1..N``.

    Build via :meth:`construct` (or pass pre-built trees, e.g. after churn
    operations from :mod:`repro.trees.dynamics`).
    """

    def __init__(self, num_nodes: int, degree: int, trees: Sequence[StreamTree]) -> None:
        if len(trees) != degree:
            raise ConstructionError(f"expected {degree} trees, got {len(trees)}")
        self.num_nodes = num_nodes
        self.degree = degree
        self.partition = GroupPartition(num_nodes, degree)
        self.trees = list(trees)
        expected = self.partition.padded_size
        for tree in self.trees:
            if tree.size != expected:
                raise ConstructionError(
                    f"tree T_{tree.index} has {tree.size} positions, expected {expected}"
                )

    @classmethod
    def construct(
        cls, num_nodes: int, degree: int, construction: Construction = "structured"
    ) -> MultiTreeForest:
        """Build the forest with the named construction ("structured"/"greedy")."""
        try:
            builder = _BUILDERS[construction]
        except KeyError:
            raise ConstructionError(
                f"unknown construction {construction!r}; choose from {sorted(_BUILDERS)}"
            ) from None
        return cls(num_nodes, degree, builder(num_nodes, degree))

    # ------------------------------------------------------------- populations
    @property
    def real_nodes(self) -> range:
        return range(1, self.num_nodes + 1)

    @property
    def padded_nodes(self) -> range:
        return range(1, self.partition.padded_size + 1)

    def is_dummy(self, node: int) -> bool:
        return self.partition.is_dummy(node)

    # -------------------------------------------------------------- invariants
    def verify(self) -> None:
        """Check every structural invariant; raises ``ConstructionError`` on failure."""
        self.verify_populations()
        self.verify_interior_disjoint()
        self.verify_position_congruence()
        self.verify_dummy_leaves()

    def verify_populations(self) -> None:
        expected = set(self.padded_nodes)
        for tree in self.trees:
            actual = set(tree.layout)
            if actual != expected:
                missing = sorted(expected - actual)[:5]
                extra = sorted(actual - expected)[:5]
                raise ConstructionError(
                    f"T_{tree.index} population mismatch: missing {missing}, extra {extra}"
                )

    def verify_interior_disjoint(self) -> None:
        seen: dict[int, int] = {}
        for tree in self.trees:
            for node in tree.interior_nodes():
                if node in seen:
                    raise ConstructionError(
                        f"node {node} is interior in both T_{seen[node]} and T_{tree.index}"
                    )
                seen[node] = tree.index

    def verify_position_congruence(self) -> None:
        d = self.degree
        for node in self.padded_nodes:
            residues: dict[int, int] = {}
            for tree in self.trees:
                residue = tree.position_of(node) % d
                if residue in residues:
                    raise ConstructionError(
                        f"node {node} occupies congruent positions (mod {d}) in "
                        f"T_{residues[residue]} and T_{tree.index} — schedule would collide"
                    )
                residues[residue] = tree.index

    def verify_dummy_leaves(self) -> None:
        for tree in self.trees:
            for node in tree.interior_nodes():
                if self.is_dummy(node):
                    raise ConstructionError(
                        f"dummy node {node} is interior in T_{tree.index}"
                    )

    # ------------------------------------------------------------------ queries
    def positions_of(self, node: int) -> list[int]:
        """Position of ``node`` in each of the ``d`` trees, tree order."""
        return [tree.position_of(node) for tree in self.trees]

    def interior_tree_of(self, node: int) -> int | None:
        """Index of the tree where ``node`` is interior, or None (all-leaf node)."""
        for tree in self.trees:
            if tree.is_interior(node):
                return tree.index
        return None

    def neighbors_of(self, node: int) -> set[int]:
        """Real nodes ``node`` exchanges packets with across all trees.

        At most ``2d``: up to ``d`` distinct parents plus the ``d`` children in
        the single tree where the node is interior.  The source (parent of
        root-children) and dummies are excluded.
        """
        neighbors: set[int] = set()
        for tree in self.trees:
            parent = tree.parent_of(node)
            if parent is not None and not self.is_dummy(parent):
                neighbors.add(parent)
            for child in tree.children_of(node):
                if not self.is_dummy(child):
                    neighbors.add(child)
        neighbors.discard(node)
        return neighbors

    def max_neighbor_count(self) -> int:
        """Worst-case neighbor count over real nodes (paper: at most 2d)."""
        return max(len(self.neighbors_of(n)) for n in self.real_nodes)

    @property
    def height(self) -> int:
        """Common height of the (padded) trees."""
        return self.trees[0].height

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"MultiTreeForest(N={self.num_nodes}, d={self.degree}, "
            f"padded={self.partition.padded_size})"
        )
