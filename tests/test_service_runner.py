"""Fleet runner: sharded execution, cache amortization, facade + export."""

from __future__ import annotations

import pytest

import repro
from repro.core.errors import ReproError
from repro.exec.executor import ExecutorPolicy
from repro.experiments import ExperimentSpec, run
from repro.reporting.export import read_fleet_report_json, write_fleet_report_json
from repro.service import (
    CapacityModel,
    FleetRunner,
    FleetSLOReport,
    FleetSpec,
    SessionSpec,
)

SERIAL = ExecutorPolicy(mode="serial")


def _small_fleet(**overrides) -> FleetSpec:
    defaults = dict(
        sessions=(
            SessionSpec(num_nodes=15, degree=3, num_packets=6, weight=2.0),
            SessionSpec(scheme="chain", num_nodes=8, num_packets=6),
        ),
        num_sessions=30,
        capacity=CapacityModel(source_fanout=1e6, backbone=1e6),
        seed=7,
    )
    defaults.update(overrides)
    return FleetSpec(**defaults)


class TestFleetRunner:
    def test_serial_run_shape(self):
        runner = FleetRunner(policy=SERIAL)
        result = runner.run(_small_fleet())
        report = result.report
        assert report.num_sessions == 30
        assert report.rejected == 0
        assert len(report.sessions) == report.admitted + report.degraded == 30
        assert len(result.decisions) == 30
        assert len(result.sessions) == 30
        assert result.executor_info["mode"] == "serial"
        ids = [slo.session_id for slo in report.sessions]
        assert ids == sorted(ids)

    def test_parallel_matches_serial_exactly(self):
        fleet = _small_fleet()
        serial = FleetRunner(policy=SERIAL).run(fleet).report
        parallel = FleetRunner(
            policy=ExecutorPolicy(max_workers=2, mode="parallel")
        ).run(fleet).report
        assert parallel == serial

    def test_one_cache_lookup_per_admitted_session(self):
        runner = FleetRunner(policy=SERIAL)
        report = runner.run(_small_fleet()).report
        # Two distinct configurations in the mix -> two compiles, the other
        # 28 admissions hit the shared cache.
        assert report.cache_misses == 2
        assert report.cache_hits == 28
        assert report.cache_hit_rate == pytest.approx(28 / 30)

    def test_shared_cache_amortizes_across_runs(self):
        runner = FleetRunner(policy=SERIAL)
        fleet = _small_fleet()
        runner.run(fleet)
        second = runner.run(fleet).report
        assert second.cache_misses == 0
        assert second.cache_hit_rate == 1.0

    def test_churned_sessions_score_truncated_prefix(self):
        fleet = _small_fleet(churn_rate=0.8, num_sessions=40)
        result = FleetRunner(policy=SERIAL).run(fleet)
        by_id = {slo.session_id: slo for slo in result.report.sessions}
        leavers = [s for s in result.sessions if s.leave_fraction is not None]
        assert leavers
        truncated = [by_id[s.session_id] for s in leavers if s.session_id in by_id]
        assert any(slo.num_packets < 6 for slo in truncated)
        assert all(slo.num_packets >= 1 for slo in truncated)
        stayers = [
            by_id[s.session_id]
            for s in result.sessions
            if s.leave_fraction is None and s.session_id in by_id
        ]
        assert all(slo.num_packets == 6 for slo in stayers)

    def test_capacity_pressure_rejects(self):
        fleet = _small_fleet(
            sessions=(SessionSpec(num_nodes=15, degree=3, num_packets=6),),
            capacity=CapacityModel(source_fanout=3.0, backbone=1e6),
            policy="reject",
            arrival="trace",
            arrival_slots=(0, 0, 0),
            num_sessions=3,
        )
        report = FleetRunner(policy=SERIAL).run(fleet).report
        assert report.admitted == 1
        assert report.rejected == 2
        assert report.reject_rate == pytest.approx(2 / 3)


class TestSketchAggregation:
    def test_sketch_report_close_to_exact(self):
        fleet = _small_fleet(num_sessions=60)
        exact = FleetRunner(policy=SERIAL).run(fleet).report
        sketch = FleetRunner(policy=SERIAL).run(
            _small_fleet(num_sessions=60, aggregation="sketch", sketch_error=0.01)
        ).report
        assert sketch.sessions == ()  # nothing per-session materialized
        assert len(exact.sessions) == 60
        assert sketch.num_sessions == exact.num_sessions
        assert sketch.admitted == exact.admitted
        for field in ("startup_p50", "startup_p99", "delay_p99", "buffer_p99"):
            exact_value = getattr(exact, field)
            drift = abs(getattr(sketch, field) - exact_value)
            assert drift <= 0.01 * exact_value + 1.0, field

    def test_sketch_report_round_trips(self, tmp_path):
        report = FleetRunner(policy=SERIAL).run(
            _small_fleet(aggregation="sketch")
        ).report
        path = tmp_path / "fleet.json"
        write_fleet_report_json(report, path)
        assert read_fleet_report_json(path) == report


class TestRunUntilConverged:
    def test_stops_early_and_reports_prefix(self):
        from repro.obs.convergence import ConvergenceCriterion

        fleet = _small_fleet(
            num_sessions=400,
            aggregation="sketch",
            run_until_converged=True,
            convergence=ConvergenceCriterion(
                quantile=99.0, rel_half_width=0.2, min_count=32, check_every=32
            ),
        )
        result = FleetRunner(policy=SERIAL).run(fleet)
        state = result.convergence
        assert state is not None and state.converged
        executed = result.executor_info["tasks"]
        assert executed < 400
        assert result.executor_info["batches"] >= 1
        # Decisions (and the report) cover exactly the executed prefix.
        assert result.report.num_sessions == len(result.decisions)
        assert result.report.num_sessions >= executed
        assert [row["shard"] for row in result.shard_timings] == list(
            range(executed)
        )

    def test_non_converged_run_has_no_state(self):
        result = FleetRunner(policy=SERIAL).run(_small_fleet())
        assert result.convergence is None


class TestShardTimings:
    def test_one_row_per_admitted_session(self):
        result = FleetRunner(policy=SERIAL).run(_small_fleet())
        assert len(result.shard_timings) == 30
        assert [row["shard"] for row in result.shard_timings] == list(range(30))
        assert all(row["elapsed_s"] >= 0 for row in result.shard_timings)

    def test_facade_exposes_shard_timings(self):
        result = run(
            ExperimentSpec(kind="fleet", fleet=_small_fleet(), executor=SERIAL)
        )
        timings = result.artifacts["shard_timings"]
        assert len(timings) == 30
        assert timings[0]["shard"] == 0


class TestFleetTelemetry:
    def test_series_and_spans_recorded(self):
        from repro.service import FleetTelemetry

        telemetry = FleetTelemetry(window=4)
        result = FleetRunner(policy=SERIAL, telemetry=telemetry).run(_small_fleet())
        assert result.telemetry is telemetry
        assert telemetry.series.total("fleet.sessions_completed") == 30
        admitted = telemetry.series.total("fleet.admitted")
        degraded = telemetry.series.total("fleet.degraded")
        assert admitted + degraded == 30
        names = {span.name for span in telemetry.spans.finished}
        assert {"fleet.resolve", "fleet.admit", "fleet.execute",
                "fleet.aggregate"} <= names
        assert "session.replay" in names  # worker spans adopted
        payload = telemetry.to_dict()
        assert payload["trace_id"] == telemetry.spans.trace_id
        assert len(payload["spans"]) == len(telemetry.spans.finished)

    def test_trace_off_keeps_series(self):
        from repro.service import FleetTelemetry

        telemetry = FleetTelemetry(window=8, trace=False)
        FleetRunner(policy=SERIAL, telemetry=telemetry).run(_small_fleet())
        assert telemetry.spans is None
        assert telemetry.rows()
        assert "spans" not in telemetry.to_dict()

    def test_parallel_matches_serial_with_telemetry_series(self):
        from repro.service import FleetTelemetry

        fleet = _small_fleet()
        serial_t = FleetTelemetry(window=4, trace=False)
        parallel_t = FleetTelemetry(window=4, trace=False)
        serial = FleetRunner(policy=SERIAL, telemetry=serial_t).run(fleet).report
        parallel = FleetRunner(
            policy=ExecutorPolicy(max_workers=2, mode="parallel"),
            telemetry=parallel_t,
        ).run(fleet).report
        assert parallel == serial
        assert parallel_t.series.to_dict() == serial_t.series.to_dict()


class TestAbrSessions:
    def _abr_fleet(self, **overrides) -> FleetSpec:
        return _small_fleet(
            sessions=(
                SessionSpec(num_nodes=15, num_packets=6, abr_profile="onoff"),
                SessionSpec(scheme="chain", num_nodes=8, num_packets=6),
            ),
            num_sessions=16,
            **overrides,
        )

    def test_abr_sessions_carry_qoe(self):
        report = FleetRunner(policy=SERIAL).run(self._abr_fleet()).report
        abr = [s for s in report.sessions if s.qoe is not None]
        plain = [s for s in report.sessions if s.qoe is None]
        assert abr and plain
        assert all(s.label.endswith("abr-onoff") for s in abr)
        assert all(s.qoe["tier"] in ("premium", "standard", "degraded") for s in abr)
        assert dict(report.qoe_tiers) and sum(dict(report.qoe_tiers).values()) == len(abr)
        assert "qoe_tier" in abr[0].row()

    def test_parallel_matches_serial_with_abr(self):
        fleet = self._abr_fleet()
        serial = FleetRunner(policy=SERIAL).run(fleet).report
        parallel = FleetRunner(
            policy=ExecutorPolicy(max_workers=2, mode="parallel")
        ).run(fleet).report
        assert parallel == serial

    def test_abr_report_round_trips(self, tmp_path):
        report = FleetRunner(policy=SERIAL).run(self._abr_fleet()).report
        path = tmp_path / "fleet.json"
        write_fleet_report_json(report, path)
        loaded = read_fleet_report_json(path)
        assert loaded == report
        assert loaded.qoe_tiers == report.qoe_tiers

    def test_unknown_profile_rejected(self):
        with pytest.raises(ReproError, match="unknown ABR trace profile"):
            SessionSpec(abr_profile="lte")


class TestFacade:
    def test_kind_fleet_runs_fleet_spec(self):
        result = run(
            ExperimentSpec(kind="fleet", fleet=_small_fleet(), executor=SERIAL)
        )
        assert isinstance(result.metrics, FleetSLOReport)
        assert len(result.rows) == 30
        assert result.provenance["cache"]["misses"] == 2
        assert result.provenance["executor"]["mode"] == "serial"
        assert result.artifacts["report"] is result.metrics

    def test_default_fleet_built_from_scalars(self):
        result = run(
            ExperimentSpec(
                kind="fleet", scheme="chain", num_nodes=8, num_packets=4,
                executor=SERIAL,
            )
        )
        assert result.metrics.num_sessions == 100
        assert all(slo.label.startswith("chain") for slo in result.metrics.sessions)

    def test_rejects_wrong_fleet_type(self):
        with pytest.raises(ReproError):
            run(ExperimentSpec(kind="fleet", fleet={"num_sessions": 5}))

    def test_top_level_exports(self):
        for name in (
            "FleetSpec", "SessionSpec", "FleetRunner", "FleetSLOReport",
            "SessionManager", "CapacityModel",
        ):
            assert hasattr(repro, name)


class TestExportRoundTrip:
    def test_report_round_trips_through_json_file(self, tmp_path):
        report = FleetRunner(policy=SERIAL).run(_small_fleet()).report
        path = tmp_path / "fleet.json"
        write_fleet_report_json(report, path)
        assert read_fleet_report_json(path) == report

    def test_read_rejects_wrong_kind(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"format_version": 1, "kind": "nope", "report": {}}')
        with pytest.raises(ReproError):
            read_fleet_report_json(path)
