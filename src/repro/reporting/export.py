"""Trace export: persist simulation runs as JSON or CSV for offline analysis.

A :class:`~repro.core.engine.SimTrace` is the ground truth of a run; these
helpers serialize the parts downstream tooling cares about — per-node arrival
traces, the transmission log, and aggregate metrics — in formats that load
without this package installed.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

from repro.core.engine import SimTrace
from repro.core.errors import ReproError
from repro.core.metrics import SchemeMetrics

__all__ = [
    "trace_to_dict",
    "write_trace_json",
    "read_trace_json",
    "trace_from_dict",
    "write_transmissions_csv",
    "write_arrivals_csv",
    "metrics_to_dict",
    "instrumentation_to_dict",
    "write_metrics_json",
    "fleet_report_to_dict",
    "write_fleet_report_json",
    "read_fleet_report_json",
    "abr_report_to_dict",
    "write_abr_report_json",
    "read_abr_report_json",
    "spans_to_chrome_trace",
    "write_chrome_trace_json",
]

_FORMAT_VERSION = 1


def _repro_version() -> str:
    from repro import __version__

    return __version__


def _check_envelope(payload: dict, *, expected_kind: str, what: str) -> None:
    """Validate the versioned envelope of a report payload.

    Rejects a ``format_version`` mismatch, a ``kind`` mismatch, and a
    ``repro_version`` whose *major* differs from this package's (minor/patch
    drift is compatible by policy; majors are not).  Reports written before
    ``repro_version`` existed are accepted as legacy.
    """
    version = payload.get("format_version")
    if version != _FORMAT_VERSION:
        raise ReproError(
            f"unsupported report format version {version!r} "
            f"(expected {_FORMAT_VERSION})"
        )
    kind = payload.get("kind")
    if kind != expected_kind:
        raise ReproError(f"not a {what}: kind={kind!r} (expected {expected_kind!r})")
    written_by = payload.get("repro_version")
    if written_by is not None:
        ours = _repro_version()
        written_major = str(written_by).split(".", 1)[0]
        our_major = ours.split(".", 1)[0]
        if written_major != our_major:
            raise ReproError(
                f"report was written by repro {written_by}, which is a "
                f"different major version than this package ({ours}); "
                "re-export it with a matching major"
            )


def trace_to_dict(
    trace: SimTrace,
    *,
    include_transmissions: bool = True,
    instrumentation=None,
) -> dict:
    """JSON-serializable snapshot of a trace.

    ``instrumentation`` (an :class:`~repro.obs.Instrumentation`) embeds the
    run's metrics/profile/event-count snapshot under an ``instrumentation``
    key; readers that predate the key ignore it.
    """
    payload = {
        "format_version": _FORMAT_VERSION,
        "num_slots": trace.num_slots,
        "arrivals": {
            str(node): {str(p): s for p, s in sorted(state.arrivals.items())}
            for node, state in sorted(trace.nodes.items())
        },
        "neighbors": {
            str(node): sorted(state.neighbors)
            for node, state in sorted(trace.nodes.items())
        },
    }
    if instrumentation is not None:
        payload["instrumentation"] = instrumentation_to_dict(instrumentation)
    if include_transmissions:
        payload["transmissions"] = [
            {
                "slot": tx.slot,
                "sender": tx.sender,
                "receiver": tx.receiver,
                "packet": tx.packet,
                "latency": tx.latency,
                "tree": tx.tree,
            }
            for tx in trace.transmissions
        ]
    return payload


def write_trace_json(trace: SimTrace, path: str | Path, **kwargs) -> Path:
    """Write a trace snapshot to ``path``; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(trace_to_dict(trace, **kwargs), indent=1))
    return path


def read_trace_json(path: str | Path) -> dict:
    """Load a snapshot written by :func:`write_trace_json` (plain dict form).

    Arrival maps are re-keyed to ints for convenience.
    """
    payload = json.loads(Path(path).read_text())
    version = payload.get("format_version")
    if version != _FORMAT_VERSION:
        raise ReproError(
            f"unsupported trace format version {version!r} (expected {_FORMAT_VERSION})"
        )
    payload["arrivals"] = {
        int(node): {int(p): s for p, s in packets.items()}
        for node, packets in payload["arrivals"].items()
    }
    payload["neighbors"] = {
        int(node): peers for node, peers in payload["neighbors"].items()
    }
    return payload


def trace_from_dict(payload: dict) -> SimTrace:
    """Rebuild a :class:`SimTrace` from a loaded snapshot.

    The reconstruction carries the arrival traces and (if present) the full
    transmission log — enough for metrics and post-hoc auditing.  Sender-side
    state (``sent_to``/``packets_sent``) is re-derived from the log.
    """
    from repro.core.node import NodeState
    from repro.core.packet import Transmission

    if "arrivals" not in payload:
        raise ReproError("snapshot has no arrivals section")
    arrivals = payload["arrivals"]
    if arrivals and isinstance(next(iter(arrivals)), str):
        payload = dict(payload)
        payload["arrivals"] = {
            int(node): {int(p): s for p, s in packets.items()}
            for node, packets in arrivals.items()
        }
    nodes: dict[int, NodeState] = {}
    for node, packets in payload["arrivals"].items():
        state = NodeState(node)
        state.arrivals.update(packets)
        nodes[node] = state
    transmissions = [
        Transmission(
            slot=row["slot"],
            sender=row["sender"],
            receiver=row["receiver"],
            packet=row["packet"],
            latency=row.get("latency", 1),
            tree=row.get("tree"),
        )
        for row in payload.get("transmissions", [])
    ]
    sources: dict[int, NodeState] = {}
    for tx in transmissions:
        owner = nodes.get(tx.sender)
        if owner is None:
            owner = sources.setdefault(tx.sender, NodeState(tx.sender))
        owner.sent_to.add(tx.receiver)
        owner.packets_sent += 1
        receiver = nodes.get(tx.receiver)
        if receiver is not None:
            receiver.received_from.add(tx.sender)
    return SimTrace(
        num_slots=payload.get("num_slots", 0),
        nodes=nodes,
        source_states=sources,
        transmissions=transmissions,
    )


def write_transmissions_csv(trace: SimTrace, path: str | Path) -> Path:
    """One row per transmission: slot, sender, receiver, packet, latency, tree."""
    path = Path(path)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["slot", "sender", "receiver", "packet", "latency", "tree"])
        for tx in trace.transmissions:
            writer.writerow(
                [tx.slot, tx.sender, tx.receiver, tx.packet, tx.latency,
                 "" if tx.tree is None else tx.tree]
            )
    return path


def write_arrivals_csv(trace: SimTrace, path: str | Path) -> Path:
    """One row per (node, packet) arrival."""
    path = Path(path)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["node", "packet", "arrival_slot"])
        for node, state in sorted(trace.nodes.items()):
            for packet, slot in sorted(state.arrivals.items()):
                writer.writerow([node, packet, slot])
    return path


def instrumentation_to_dict(instrumentation) -> dict:
    """Serializable view of an :class:`~repro.obs.Instrumentation` bundle.

    Keys present only for the parts that were attached: ``metrics`` (registry
    snapshot), ``profile`` (per-phase count/total/min/max), ``event_counts``
    (per-name tallies — the cheap summary; the full stream lives in the
    tracer's JSONL sink, not here).
    """
    payload: dict = {}
    if instrumentation.registry is not None:
        payload["metrics"] = instrumentation.registry.snapshot()
    if instrumentation.profiler is not None:
        payload["profile"] = instrumentation.profiler.snapshot()
    if instrumentation.tracer is not None:
        payload["event_counts"] = dict(instrumentation.tracer.counts)
    return payload


def write_metrics_json(instrumentation, path: str | Path) -> Path:
    """Write an instrumentation snapshot alone (no trace) to ``path``."""
    path = Path(path)
    path.write_text(json.dumps(instrumentation_to_dict(instrumentation), indent=1))
    return path


def fleet_report_to_dict(report) -> dict:
    """Versioned JSON envelope of a :class:`~repro.service.FleetSLOReport`."""
    return {
        "format_version": _FORMAT_VERSION,
        "kind": "fleet_slo_report",
        "repro_version": _repro_version(),
        "report": report.to_dict(),
    }


def write_fleet_report_json(report, path: str | Path) -> Path:
    """Write a fleet SLO report to ``path``; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(fleet_report_to_dict(report), indent=1))
    return path


def read_fleet_report_json(path: str | Path):
    """Load a report written by :func:`write_fleet_report_json`.

    Returns a :class:`~repro.service.FleetSLOReport` equal to the one
    written (the full round-trip, per-session detail included).
    """
    from repro.service.slo import FleetSLOReport

    payload = json.loads(Path(path).read_text())
    _check_envelope(payload, expected_kind="fleet_slo_report", what="fleet SLO report")
    return FleetSLOReport.from_dict(payload["report"])


def abr_report_to_dict(report) -> dict:
    """Versioned JSON envelope of an :class:`~repro.abr.AbrTradeoffReport`."""
    return {
        "format_version": _FORMAT_VERSION,
        "kind": "abr_tradeoff_report",
        "repro_version": _repro_version(),
        "report": report.to_dict(),
    }


def write_abr_report_json(report, path: str | Path) -> Path:
    """Write an ABR delay/buffer tradeoff report to ``path``; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(abr_report_to_dict(report), indent=1))
    return path


def read_abr_report_json(path: str | Path):
    """Load a report written by :func:`write_abr_report_json`.

    Returns an :class:`~repro.abr.AbrTradeoffReport` equal to the one written
    (full round trip, per-point QoE included).
    """
    from repro.abr.sweep import AbrTradeoffReport

    payload = json.loads(Path(path).read_text())
    _check_envelope(
        payload, expected_kind="abr_tradeoff_report", what="ABR tradeoff report"
    )
    return AbrTradeoffReport.from_dict(payload["report"])


def spans_to_chrome_trace(spans) -> dict:
    """Convert recorded spans to the Chrome trace-event JSON format.

    ``spans`` is a :class:`~repro.obs.spans.SpanTracer` or an iterable of
    :class:`~repro.obs.spans.Span`.  Each span becomes a complete
    (``"ph": "X"``) event with microsecond ``ts``/``dur``, so the file loads
    directly in ``chrome://tracing`` / Perfetto.  Span attributes ride in
    ``args`` alongside the span/parent ids.
    """
    finished = getattr(spans, "finished", spans)
    events = []
    for span in finished:
        args = dict(span.attrs)
        args["span_id"] = span.span_id
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        events.append(
            {
                "name": span.name,
                "cat": "repro",
                "ph": "X",
                "ts": span.start_s * 1e6,
                "dur": span.dur_s * 1e6,
                "pid": span.pid,
                "tid": span.pid,
                "id": span.trace_id,
                "args": args,
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace_json(spans, path: str | Path) -> Path:
    """Write spans as a Chrome trace to ``path``; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(spans_to_chrome_trace(spans), indent=1))
    return path


def metrics_to_dict(metrics: SchemeMetrics) -> dict:
    """JSON-serializable aggregate metrics, including the per-node detail."""
    return {
        **metrics.row(),
        "per_node": {
            str(node): {
                "startup_delay": s.startup_delay,
                "buffer_peak": s.buffer_peak,
                "first_arrival_slot": s.first_arrival_slot,
            }
            for node, s in sorted(metrics.per_node.items())
        },
    }
