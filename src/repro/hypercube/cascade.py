"""The arbitrary-``N`` hypercube cascade (Section 3.2).

``N`` receivers are split into a chain of shrinking hypercubes: the first cube
takes ``N_1 = 2^{k_1} - 1`` nodes with ``k_1 = floor(log2(N + 1))``, and the
remainder recurses.  Cube 0's vertex 0 is the real source; for cube ``c > 0``
the *whole previous cube* acts as a logical source: in every slot the upstream
cube's spare-capacity port (the node paired with its source) forwards the
packet it just consumed to the downstream cube's current receive port.

Timing is deterministic.  A cube of dimension ``k`` whose injections start at
global slot ``o`` (packet ``p`` arriving at local slot ``p``) has every node
holding packet ``p`` by local slot ``p + k``, and its port can always forward
packet ``τ - k`` at local slot ``τ`` (the packet consumed at the end of that
slot).  Hence cube ``c + 1`` starts at ``o_{c+1} = o_c + k_c`` and cube ``c``'s
playback begins after local slot ``k_c`` — giving Proposition 2's
``O(log^2 N)`` worst-case delay, ``O(1)`` buffers and ``O(log N)`` neighbors,
and Theorem 4's ``2 log N`` average delay.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.errors import ConstructionError

__all__ = [
    "CubeSpec",
    "cascade_plan",
    "worst_case_delay_bound",
    "expected_worst_delay",
    "expected_average_delay",
    "theorem4_bound",
    "proposition2_neighbor_bound",
]


@dataclass(frozen=True, slots=True)
class CubeSpec:
    """One hypercube in the cascade.

    Attributes:
        index: position in the chain (0 is fed by the real source).
        k: cube dimension; the cube spans ``2^k - 1`` receivers.
        offset: global slot at which packet 0 reaches this cube (``o_c``).
        first_node: smallest global receiver id in this cube.
    """

    index: int
    k: int
    offset: int
    first_node: int

    @property
    def num_receivers(self) -> int:
        return (1 << self.k) - 1

    @property
    def node_range(self) -> range:
        """Global receiver ids of this cube's vertices ``1 .. 2^k - 1``."""
        return range(self.first_node, self.first_node + self.num_receivers)

    def global_id(self, vertex: int) -> int:
        """Global id of a local vertex (vertex 0 is the cube's feeder)."""
        if not 1 <= vertex <= self.num_receivers:
            raise ConstructionError(
                f"vertex {vertex} outside 1..{self.num_receivers} of cube {self.index}"
            )
        return self.first_node + vertex - 1

    @property
    def startup_delay(self) -> int:
        """Slots before this cube's nodes consume their first packet.

        Packet ``p`` is held cube-wide by local slot ``p + k``; consuming it at
        the end of that slot gives a startup delay of ``offset + k + 1``
        (the single-cube ``k = 1`` chain needs only ``offset + 1``).
        """
        lag = 0 if self.k == 1 else self.k
        return self.offset + lag + 1


def cascade_plan(num_nodes: int) -> list[CubeSpec]:
    """Split ``N`` receivers into the paper's chain of maximal hypercubes.

    Examples:
        >>> [cube.k for cube in cascade_plan(100)]
        [6, 5, 2, 2]
        >>> cascade_plan(7)[0].startup_delay  # a single 3-cube: k + 1
        4
    """
    if num_nodes < 1:
        raise ConstructionError(f"need at least one receiver, got {num_nodes}")
    cubes: list[CubeSpec] = []
    remaining = num_nodes
    offset = 0
    first_node = 1
    index = 0
    while remaining > 0:
        k = (remaining + 1).bit_length() - 1  # floor(log2(remaining + 1))
        cubes.append(CubeSpec(index=index, k=k, offset=offset, first_node=first_node))
        size = (1 << k) - 1
        remaining -= size
        first_node += size
        offset += k  # the spare port exports with lag exactly k
        index += 1
    return cubes


def expected_worst_delay(num_nodes: int) -> int:
    """Exact worst-case startup delay of the deterministic cascade."""
    return max(cube.startup_delay for cube in cascade_plan(num_nodes))


def expected_average_delay(num_nodes: int) -> float:
    """Exact average startup delay of the deterministic cascade."""
    plan = cascade_plan(num_nodes)
    total = sum(cube.startup_delay * cube.num_receivers for cube in plan)
    return total / num_nodes


def worst_case_delay_bound(num_nodes: int) -> float:
    """Proposition 2's ``O(log^2 N)`` bound, instantiated as
    ``(log2(N+1) + 1)^2``: at most ``log2(N+1)`` cubes each adding at most
    ``k_1`` slots of offset plus its own ``k + 1`` startup."""
    k1 = math.floor(math.log2(num_nodes + 1))
    return float((k1 + 1) ** 2)


def theorem4_bound(num_nodes: int) -> float:
    """Theorem 4: the average startup delay is at most ``2 log2 N``."""
    if num_nodes < 1:
        raise ConstructionError(f"need at least one receiver, got {num_nodes}")
    if num_nodes == 1:
        return 2.0  # ave(1) = 1 <= 2; log2(1) = 0 makes the bound vacuous
    return 2 * math.log2(num_nodes)


def proposition2_neighbor_bound(num_nodes: int) -> int:
    """Upper bound on any node's neighbor count in the cascade.

    A vertex of cube ``c`` talks to its ``k_c`` cube neighbors; a port vertex
    additionally receives from up to ``k_{c-1}`` upstream ports and sends to
    up to ``k_{c+1}`` downstream ports — all ``O(log N)``.
    """
    plan = cascade_plan(num_nodes)
    bound = 0
    for i, cube in enumerate(plan):
        upstream = plan[i - 1].k if i > 0 else 1  # cube 0 hears the source
        downstream = plan[i + 1].k if i + 1 < len(plan) else 0
        bound = max(bound, cube.k + upstream + downstream)
    return bound
