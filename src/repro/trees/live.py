"""Streaming *through* churn: the paper's omitted hiccup evaluation.

The appendix notes that "nodes participating in the swapping process may
suffer from hiccups … We performed an empirical evaluation of such effects
(using simulation); the results are omitted here due to lack of space."  This
module restores that experiment: a :class:`ChurningMultiTreeProtocol` streams
packets while churn events fire at scheduled slots, with the forest repaired
in place by the appendix algorithms.  Because mid-stream repairs relocate
nodes, the static round-robin timetable no longer applies; instead every
interior node forwards, in each slot, the newest packet of its tree that it
actually holds and its current child has not yet received.  The engine's
holdings are the ground truth, so measured hiccups are real missed deadlines,
not schedule-table artifacts.

Measurement: each node locks in a playback start when it has received one
packet from every tree (the paper's Observation 2 rule applied online); from
then on it must consume one packet per slot.  :func:`churn_hiccup_report`
counts the deadline misses per node and relates them to the repair events'
``touched`` sets.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass, field
from statistics import mean

from repro.core.engine import SimTrace, simulate
from repro.core.errors import ConstructionError
from repro.core.packet import Transmission
from repro.core.protocol import HoldingsView, StreamingProtocol
from repro.obs.events import CHURN_APPLIED, PLAYBACK_STALL
from repro.trees.dynamics import ChurnReport, DynamicForest
from repro.trees.forest import SOURCE_ID
from repro.workloads.churn import ChurnEvent

__all__ = [
    "ScheduledChurn",
    "ChurningMultiTreeProtocol",
    "NodeHiccups",
    "ChurnHiccupReport",
    "FleetRepairOutcome",
    "churn_hiccup_report",
    "churn_experiment",
    "fleet_repair",
    "random_churn_schedule",
]


@dataclass(frozen=True, slots=True)
class ScheduledChurn:
    """A churn event pinned to a simulation slot.

    ``victim`` selects the departing node for deletions (required there,
    ignored for additions).
    """

    slot: int
    event: ChurnEvent
    victim: int | None = None

    def __post_init__(self) -> None:
        if self.slot < 0:
            raise ConstructionError(f"slot must be >= 0, got {self.slot}")
        if self.event.kind == "delete" and self.victim is None:
            raise ConstructionError("scheduled deletions must name a victim")


class ChurningMultiTreeProtocol(StreamingProtocol):
    """Multi-tree streaming with in-band churn repairs.

    Args:
        num_nodes: initial population.
        degree: tree degree ``d``.
        churn: events to apply, each at the *start* of its slot.
        construction: initial construction name.
        lazy: use lazy maintenance for the repairs.
    """

    def __init__(
        self,
        num_nodes: int,
        degree: int,
        churn: Sequence[ScheduledChurn] = (),
        *,
        construction: str = "structured",
        lazy: bool = False,
    ) -> None:
        self._ctor = (num_nodes, degree, construction, lazy)
        self.degree = degree
        self._churn = sorted(churn, key=lambda s: s.slot)
        self._initial_nodes = frozenset(range(1, num_nodes + 1))
        adds = sum(1 for s in self._churn if s.event.kind == "add")
        self._id_ceiling = num_nodes + adds
        self.reset()

    def reset(self) -> None:
        """Rebuild the forest and churn bookkeeping for a fresh run."""
        num_nodes, degree, construction, lazy = self._ctor
        self.forest = DynamicForest(num_nodes, degree, construction, lazy=lazy)
        self._next_churn = 0
        self.join_slots: dict[int, int] = dict.fromkeys(self._initial_nodes, 0)
        self.leave_slots: dict[int, int] = {}
        self.reports: list[tuple[int, ChurnReport]] = []
        self._trees_cache = None

    # --------------------------------------------------------------- topology
    @property
    def node_ids(self) -> Sequence[int]:
        """Every node that is ever a member (the engine tracks all of them)."""
        return range(1, self._id_ceiling + 1)

    @property
    def source_ids(self) -> frozenset[int]:
        return frozenset((SOURCE_ID,))

    def send_capacity(self, node: int) -> int:
        return self.degree if node == SOURCE_ID else 1

    # ----------------------------------------------------------------- churn
    def _apply_due_churn(self, slot: int) -> None:
        while self._next_churn < len(self._churn) and self._churn[self._next_churn].slot <= slot:
            scheduled = self._churn[self._next_churn]
            self._next_churn += 1
            if scheduled.event.kind == "add":
                node, report = self.forest.add_node()
                self.join_slots[node] = slot
            else:
                victim = scheduled.victim
                if victim not in self.forest.real_ids:
                    continue  # victim already gone; skip
                report = self.forest.delete_node(victim)
                self.leave_slots[victim] = slot
            self.reports.append((slot, report))
            self._trees_cache = None

    # --------------------------------------------------------------- schedule
    def transmissions(self, slot: int, view: HoldingsView) -> Iterable[Transmission]:
        self._apply_due_churn(slot)
        if self._trees_cache is None:
            self._trees_cache = self.forest.trees()
        d = self.degree
        r = slot % d
        m = slot // d
        out: list[Transmission] = []
        for tree in self._trees_cache:
            k = tree.index
            # Source: packet k + m*d to child index r, unless already held
            # (a relocated node may have received it at its old position).
            target = tree.node_at(r + 1)
            packet = k + m * d
            if target >= 0 and not view.holds(target, packet):
                out.append(
                    Transmission(
                        slot=slot, sender=SOURCE_ID, receiver=target,
                        packet=packet, tree=k,
                    )
                )
            # Interior nodes: newest held packet of this tree the child lacks.
            for position in range(1, tree.interior + 1):
                sender = tree.node_at(position)
                child = tree.node_at(d * position + 1 + r)
                if child < 0:
                    continue
                held = [
                    p for p in view.packets_of(sender)
                    if p % d == k and not view.holds(child, p)
                ]
                if not held:
                    continue
                out.append(
                    Transmission(
                        slot=slot, sender=sender, receiver=child,
                        packet=max(held), tree=k,
                    )
                )
        return out

    def slots_for_packets(self, num_packets: int) -> int:
        churn_end = self._churn[-1].slot if self._churn else 0
        height_margin = (self.forest.interior + 2) * self.degree
        return churn_end + height_margin + (num_packets + 2) * self.degree


@dataclass(frozen=True, slots=True)
class NodeHiccups:
    """Per-node playback outcome under churn.

    Attributes:
        node: node id.
        start_slot: slot at whose end the node consumed its first packet
            (Observation 2 rule, applied online), or -1 if it never started.
        hiccups: deadline misses after starting, within the horizon.
        relocated: True if a churn repair moved this node in some tree.
    """

    node: int
    start_slot: int
    hiccups: int
    relocated: bool


@dataclass(frozen=True)
class ChurnHiccupReport:
    """Aggregate hiccup accounting for one churn run."""

    per_node: dict[int, NodeHiccups]
    total_hiccups: int
    hiccup_nodes: frozenset[int]
    relocated_nodes: frozenset[int]

    @property
    def untouched_hiccups(self) -> int:
        """Hiccups at nodes no repair relocated directly.

        Non-zero in general: when a repair promotes a node into an interior
        position mid-stream, the packets it missed are also missed by its
        whole subtree, so hiccups propagate one level beyond the ``touched``
        set — the collateral the paper's appendix alludes to.
        """
        return sum(
            h.hiccups for h in self.per_node.values() if not h.relocated
        )

    def mean_hiccups(self) -> float:
        return mean(h.hiccups for h in self.per_node.values()) if self.per_node else 0.0


def churn_hiccup_report(
    protocol: ChurningMultiTreeProtocol,
    trace: SimTrace,
    *,
    horizon_packet: int,
    tracer=None,
) -> ChurnHiccupReport:
    """Score a finished churn run.

    Each surviving node's playback starts (online) at the end of the slot in
    which it first holds one packet from every tree — i.e. packets
    ``0..d-1`` adjusted for its join time; a node joining mid-stream starts
    with the first full window ``w*d..(w+1)*d-1`` arriving after it joined.
    After starting, consuming one packet per slot must never outrun arrivals;
    every miss counts as a hiccup (playback skips, keeping real-time pace).
    A :class:`~repro.obs.EventTracer` passed as ``tracer`` receives one
    ``playback_stall`` event per missed deadline.
    """
    d = protocol.degree
    relocated = {
        node
        for _, report in protocol.reports
        for node in report.touched
    }
    per_node: dict[int, NodeHiccups] = {}
    total = 0
    for node in sorted(protocol.forest.real_ids):
        arrivals: Mapping[int, int] = trace.arrivals(node)
        join = protocol.join_slots.get(node, 0)
        # First complete window of d consecutive packets.
        window = _first_complete_window(arrivals, d, horizon_packet)
        if window is None:
            per_node[node] = NodeHiccups(node, -1, horizon_packet, node in relocated)
            total += horizon_packet
            if tracer is not None:
                for packet in range(horizon_packet):
                    tracer.emit(PLAYBACK_STALL, -1, node=node, packet=packet)
            continue
        start_packet, start_slot = window
        hiccups = 0
        deadline = start_slot
        for packet in range(start_packet, horizon_packet):
            deadline += 1 if packet > start_packet else 0
            arrived = arrivals.get(packet)
            if arrived is None or arrived > deadline:
                hiccups += 1
                if tracer is not None:
                    tracer.emit(PLAYBACK_STALL, deadline, node=node, packet=packet)
        per_node[node] = NodeHiccups(node, start_slot, hiccups, node in relocated)
        total += hiccups
    hiccup_nodes = frozenset(n for n, h in per_node.items() if h.hiccups)
    return ChurnHiccupReport(
        per_node=per_node,
        total_hiccups=total,
        hiccup_nodes=hiccup_nodes,
        relocated_nodes=frozenset(relocated),
    )


def _first_complete_window(
    arrivals: Mapping[int, int], d: int, horizon_packet: int
) -> tuple[int, int] | None:
    """First ``(start_packet, ready_slot)`` where packets ``w*d..w*d+d-1``
    have all arrived; ``ready_slot`` is when the last of them landed."""
    for w in range(0, max(1, horizon_packet // d)):
        packets = range(w * d, w * d + d)
        if all(p in arrivals for p in packets):
            return w * d, max(arrivals[p] for p in packets)
    return None


@dataclass(frozen=True, slots=True)
class FleetRepairOutcome:
    """Result of applying one epoch's churn to a session kind's forest.

    Attributes:
        forest: the repaired :class:`~repro.trees.dynamics.DynamicForest`
            (verified — every construction invariant holds).
        reports: one :class:`~repro.trees.dynamics.ChurnReport` per applied
            add/delete (plus the trailing compact for eager repairs).
        swaps: total position swaps across the repairs — the appendix's
            maintenance-cost metric.
        touched: distinct real nodes relocated by at least one repair — the
            hiccup-candidate set the paper bounds by ``d^2`` per operation.
        lazy: whether the lazy maintenance variant was used.
    """

    forest: DynamicForest
    reports: tuple[ChurnReport, ...]
    swaps: int
    touched: frozenset[int]
    lazy: bool


def fleet_repair(
    num_nodes: int,
    degree: int,
    *,
    joins: int = 0,
    leaves: int = 0,
    lazy: bool = False,
    construction: str = "structured",
    seed: int = 0,
) -> FleetRepairOutcome:
    """Apply an epoch's join/leave churn with the appendix repair algorithms.

    The fleet-scale entry point the control plane's churn controller uses: a
    session kind's forest absorbs ``leaves`` departures and ``joins``
    arrivals (interleaved, departures first within each step — the paper's
    delete-then-add sequence that motivates lazy maintenance), victims drawn
    deterministically from ``seed``.  Eager repairs finish with a
    :meth:`~repro.trees.dynamics.DynamicForest.compact` so the tightness
    invariant holds; lazy repairs defer it, trading a padded tail for fewer
    relocation events.  The repaired forest is verified before returning —
    a repair that broke a construction invariant raises instead of being
    silently re-cached.
    """
    import numpy as np

    forest = DynamicForest(num_nodes, degree, construction, lazy=lazy)
    rng = np.random.default_rng(seed)
    reports: list[ChurnReport] = []
    for step in range(max(joins, leaves)):
        if step < leaves and len(forest.real_ids) > 2:
            victims = sorted(forest.real_ids)
            victim = victims[int(rng.integers(0, len(victims)))]
            reports.append(forest.delete_node(victim))
        if step < joins:
            _, report = forest.add_node()
            reports.append(report)
    if not lazy:
        reports.append(forest.compact())
    forest.verify()
    return FleetRepairOutcome(
        forest=forest,
        reports=tuple(reports),
        swaps=sum(r.swaps for r in reports),
        touched=frozenset().union(*(r.touched for r in reports)) if reports else frozenset(),
        lazy=lazy,
    )


def random_churn_schedule(
    num_nodes: int, events: int, *, seed: int = 0
) -> list[ScheduledChurn]:
    """A reproducible random churn trace: ~50/50 adds and deletes.

    Event slots are drawn uniformly from ``[5, 5 + 4 * events)`` so churn
    lands mid-stream; deletions pick a uniformly random live victim and never
    shrink the population below 3.  The same ``(num_nodes, events, seed)``
    triple always yields the same trace.
    """
    import numpy as np

    rng = np.random.default_rng(seed)
    live = set(range(1, num_nodes + 1))
    churn: list[ScheduledChurn] = []
    for _ in range(events):
        slot = int(rng.integers(5, 5 + 4 * events))
        if rng.random() < 0.5 and len(live) > 2:
            victim = int(rng.choice(sorted(live)))
            live.discard(victim)
            churn.append(ScheduledChurn(slot, ChurnEvent("delete"), victim=victim))
        else:
            churn.append(ScheduledChurn(slot, ChurnEvent("add")))
    return churn


def churn_experiment(
    num_nodes: int,
    degree: int,
    churn: Sequence[ScheduledChurn],
    *,
    num_packets: int = 40,
    lazy: bool = False,
    construction: str = "structured",
    instrumentation=None,
) -> tuple[ChurningMultiTreeProtocol, ChurnHiccupReport]:
    """Build, stream, and score a churn scenario in one call.

    With ``instrumentation`` set, the run emits the engine's event stream
    plus one ``churn_applied`` event per applied churn operation and one
    ``playback_stall`` event per missed deadline.
    """
    protocol = ChurningMultiTreeProtocol(
        num_nodes, degree, churn, construction=construction, lazy=lazy
    )
    trace = simulate(
        protocol,
        protocol.slots_for_packets(num_packets),
        strict_duplicates=False,  # relocated nodes may be offered duplicates
        instrumentation=instrumentation,
    )
    protocol.forest.verify()
    tracer = instrumentation.tracer if instrumentation is not None else None
    if tracer is not None:
        for slot, churn_report in protocol.reports:
            tracer.emit(
                CHURN_APPLIED, slot, kind=churn_report.operation,
                node=churn_report.node,
            )
    report = churn_hiccup_report(
        protocol, trace, horizon_packet=num_packets, tracer=tracer
    )
    return protocol, report

