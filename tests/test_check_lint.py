"""Tests for the project lint pass (repro.check.lint / ``repro lint``)."""

import json
import textwrap
from pathlib import Path

import pytest

from repro.check import (
    LINT_RULES,
    LintViolation,
    format_violations,
    lint_file,
    lint_paths,
    lint_source,
)

LIB = Path("src/repro/core/example.py")  # in-scope library path
ORDERED = Path("src/repro/trees/example.py")  # emission-order critical path
OBS = Path("src/repro/obs/example.py")  # wall-clock exempt path
TEST = Path("tests/example.py")  # fully exempt path


def rules_of(violations):
    return sorted(v.rule for v in violations)


# ------------------------------------------------------------------ rule fires
class TestRules:
    def test_rep001_unseeded_default_rng(self):
        src = "import numpy as np\nrng = np.random.default_rng()\n"
        assert rules_of(lint_source(src, LIB)) == ["REP001"]

    def test_rep001_seeded_default_rng_is_clean(self):
        src = textwrap.dedent(
            """
            import numpy as np
            a = np.random.default_rng(42)
            b = np.random.default_rng(seed=7)
            """
        )
        assert lint_source(src, LIB) == []

    def test_rep001_none_seed_still_fires(self):
        src = "import numpy as np\nrng = np.random.default_rng(None)\n"
        assert rules_of(lint_source(src, LIB)) == ["REP001"]

    def test_rep001_legacy_numpy_global(self):
        src = "import numpy as np\nx = np.random.rand(3)\n"
        assert rules_of(lint_source(src, LIB)) == ["REP001"]

    def test_rep001_stdlib_module_rng(self):
        src = "import random\nx = random.random()\n"
        assert rules_of(lint_source(src, LIB)) == ["REP001"]

    def test_rep001_seeded_random_instance_is_clean(self):
        src = "import random\nrng = random.Random(3)\nx = rng.random()\n"
        assert lint_source(src, LIB) == []

    def test_rep002_time_call(self):
        src = "import time\nt = time.perf_counter()\n"
        assert rules_of(lint_source(src, LIB)) == ["REP002"]

    def test_rep002_from_import(self):
        src = "from time import monotonic\n"
        assert rules_of(lint_source(src, LIB)) == ["REP002"]

    def test_rep002_datetime_now(self):
        src = "from datetime import datetime\nstamp = datetime.now()\n"
        assert rules_of(lint_source(src, LIB)) == ["REP002"]

    def test_rep002_obs_is_exempt(self):
        src = "import time\nt = time.perf_counter()\n"
        assert lint_source(src, OBS) == []

    def test_rep003_bare_assert(self):
        src = "def f(x):\n    assert x > 0\n    return x\n"
        assert rules_of(lint_source(src, LIB)) == ["REP003"]

    def test_rep004_set_iteration_in_order_critical_dir(self):
        src = "for n in {3, 1, 2}:\n    print(n)\n"
        assert rules_of(lint_source(src, ORDERED)) == ["REP004"]

    def test_rep004_variants(self):
        src = textwrap.dedent(
            """
            xs = [x for x in set(range(4))]
            ys = [y for y in {a for a in range(4)}]
            for z in {1} | {2}:
                pass
            """
        )
        assert rules_of(lint_source(src, ORDERED)) == ["REP004"] * 3

    def test_rep004_only_applies_in_emission_dirs(self):
        src = "for n in {3, 1, 2}:\n    print(n)\n"
        assert lint_source(src, LIB) == []

    def test_rep004_sorted_set_is_clean(self):
        src = "for n in sorted({3, 1, 2}):\n    print(n)\n"
        assert lint_source(src, ORDERED) == []

    def test_rep000_syntax_error(self):
        violations = lint_source("def broken(:\n", LIB)
        assert rules_of(violations) == ["REP000"]

    def test_exempt_dirs_skip_every_rule(self):
        src = "import time\nassert time.time() > 0\n"
        assert lint_source(src, TEST) == []


# --------------------------------------------------------------------- pragmas
class TestPragmas:
    SRC = "import time\nt = time.perf_counter()\nassert t >= 0\n"

    def test_disable_single_rule(self):
        src = "# repro-lint: disable=REP002\n" + self.SRC
        assert rules_of(lint_source(src, LIB)) == ["REP003"]

    def test_disable_multiple_rules(self):
        src = "# repro-lint: disable=REP002, REP003\n" + self.SRC
        assert lint_source(src, LIB) == []

    def test_disable_all(self):
        src = "# repro-lint: disable=all\n" + self.SRC
        assert lint_source(src, LIB) == []

    def test_unknown_rule_token_is_harmless(self):
        src = "# repro-lint: disable=REP999\n" + self.SRC
        assert rules_of(lint_source(src, LIB)) == ["REP002", "REP003"]


# ------------------------------------------------------------ paths and output
class TestPathsAndFormats:
    def make_tree(self, tmp_path):
        pkg = tmp_path / "src" / "repro"
        (pkg / "trees").mkdir(parents=True)
        (pkg / "obs").mkdir()
        (tmp_path / "tests").mkdir()
        (pkg / "trees" / "bad.py").write_text(
            "for n in {1, 2}:\n    x = n\nassert x\n"
        )
        (pkg / "obs" / "clock.py").write_text("import time\nt = time.time()\n")
        (tmp_path / "tests" / "test_ok.py").write_text("assert True\n")
        return tmp_path

    def test_lint_paths_recurses_and_sorts(self, tmp_path):
        root = self.make_tree(tmp_path)
        violations = lint_paths([root])
        assert rules_of(violations) == ["REP003", "REP004"]
        assert violations == sorted(
            violations, key=lambda v: (v.path, v.line, v.col, v.rule)
        )

    def test_lint_file_reads_from_disk(self, tmp_path):
        root = self.make_tree(tmp_path)
        bad = root / "src" / "repro" / "trees" / "bad.py"
        assert rules_of(lint_file(bad)) == ["REP003", "REP004"]

    def test_text_format(self):
        violation = LintViolation("REP003", "x.py", 3, 0, "bare assert")
        text = format_violations([violation])
        assert "x.py:3:0: REP003 bare assert" in text
        assert "1 violation found" in text

    def test_text_format_empty(self):
        assert format_violations([]) == "OK: no lint violations"

    def test_json_format(self):
        violation = LintViolation("REP001", "y.py", 1, 4, "unseeded rng")
        payload = json.loads(format_violations([violation], format="json"))
        assert payload == [
            {"rule": "REP001", "path": "y.py", "line": 1, "col": 4,
             "message": "unseeded rng"}
        ]

    def test_unknown_format_rejected(self):
        with pytest.raises(ValueError):
            format_violations([], format="yaml")

    def test_rule_catalogue_is_complete(self):
        assert set(LINT_RULES) == {"REP001", "REP002", "REP003", "REP004"}
        assert all(LINT_RULES[rule] for rule in LINT_RULES)


# -------------------------------------------------------------- the repo gate
class TestRepoIsClean:
    def test_src_tree_has_no_violations(self):
        # The CI static-analysis job runs `repro lint src`; keep it green.
        violations = lint_paths(["src"])
        assert violations == [], format_violations(violations)
