"""QoE accounting and tier bucketing for ABR sessions.

Follows the standard QoE decomposition of the ABR literature (and the
``videoplayer.py`` idiom of SNIPPETS.md §2): a session is judged by

* **rebuffer time and events** — stalled slots, and maximal runs of them;
* **mean played bitrate** — average rung over play slots;
* **smoothness** — how often (and how far) the played bitrate jumps.

All three derive from the per-slot log an
:class:`~repro.abr.session.AbrSessionResult` carries — every slot is exactly
one of ``startup`` / ``play`` / ``rebuffer``, so the three counts *partition*
the session length (the property test in ``tests/test_abr_qoe.py`` pins
this).  The scalar score is the usual linear QoE form

``score = mean_bitrate - smoothness_penalty / played_chunks
        - REBUFFER_WEIGHT * rebuffer_ratio``

and :func:`classify_tier` buckets sessions into :data:`QOE_TIERS`:

* ``premium`` — no rebuffer events and mean bitrate at or above the
  premium threshold;
* ``standard`` — no rebuffer events at a lower bitrate;
* ``degraded`` — any rebuffering at all.

The delay/buffer tradeoff sweep (:mod:`repro.abr.sweep`) reports its curves
per tier, which is what connects the paper's worst-case bounds to a
user-facing quality statement.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

from repro.abr.session import (
    SLOT_PLAY,
    SLOT_REBUFFER,
    SLOT_STARTUP,
    AbrSessionResult,
)
from repro.core.errors import ReproError
from repro.obs.registry import active_registry

__all__ = [
    "PREMIUM_BITRATE",
    "QOE_TIERS",
    "REBUFFER_WEIGHT",
    "QoEMetrics",
    "classify_tier",
    "collect_qoe",
    "qoe_from_slot_log",
]

#: QoE tiers, best first.
QOE_TIERS: tuple[str, ...] = ("premium", "standard", "degraded")

#: Mean played bitrate (capacity units/slot) at or above which a
#: rebuffer-free session counts as premium.  Sits just under the 4.0 rung of
#: :data:`~repro.abr.ladder.DEFAULT_LADDER` so a steady high-bandwidth
#: session qualifies despite its cheaper cold-start chunks.
PREMIUM_BITRATE = 3.5

#: Weight of the rebuffer ratio in the scalar score (one rebuffered slot
#: hurts roughly like losing REBUFFER_WEIGHT bitrate units for one slot).
REBUFFER_WEIGHT = 4.0


@dataclass(frozen=True, slots=True)
class QoEMetrics:
    """QoE summary of one session; slot counts partition ``session_slots``."""

    session_slots: int
    startup_slots: int
    played_slots: int
    rebuffer_slots: int
    rebuffer_events: int
    mean_bitrate: float
    bitrate_switches: int
    smoothness_penalty: float
    score: float
    tier: str

    def __post_init__(self) -> None:
        if self.startup_slots + self.played_slots + self.rebuffer_slots != self.session_slots:
            raise ReproError(
                "QoE slot counts do not partition the session: "
                f"{self.startup_slots} + {self.played_slots} + "
                f"{self.rebuffer_slots} != {self.session_slots}"
            )
        if self.tier not in QOE_TIERS:
            raise ReproError(f"unknown QoE tier {self.tier!r}; expected {QOE_TIERS}")

    @property
    def rebuffer_ratio(self) -> float:
        """Fraction of the session spent stalled."""
        return self.rebuffer_slots / self.session_slots if self.session_slots else 0.0

    def to_dict(self) -> dict[str, object]:
        return dict(asdict(self))

    @classmethod
    def from_dict(cls, payload: dict[str, object]) -> "QoEMetrics":
        try:
            return cls(**{f: payload[f] for f in cls.__dataclass_fields__})  # type: ignore[arg-type]
        except KeyError as exc:
            raise ReproError(f"QoE payload missing field {exc}") from exc


def classify_tier(
    mean_bitrate: float,
    rebuffer_events: int,
    *,
    premium_bitrate: float = PREMIUM_BITRATE,
) -> str:
    """Bucket a session into one of :data:`QOE_TIERS`.

    Any stall disqualifies from the rebuffer-free tiers — the tiering mirrors
    the paper's worst-case stance, where a single underflow is the failure
    the buffer/delay budget exists to prevent.
    """
    if rebuffer_events < 0:
        raise ReproError(f"rebuffer_events must be >= 0, got {rebuffer_events}")
    if rebuffer_events > 0:
        return "degraded"
    if mean_bitrate >= premium_bitrate:
        return "premium"
    return "standard"


def qoe_from_slot_log(
    slot_log: tuple[str, ...] | list[str],
    slot_rates: tuple[float, ...] | list[float],
    *,
    premium_bitrate: float = PREMIUM_BITRATE,
) -> QoEMetrics:
    """Compute QoE from a raw per-slot log (the replay-validation path).

    ``slot_log[i]`` is the slot's state, ``slot_rates[i]`` the bitrate played
    in it (0.0 for ``startup``/``rebuffer`` slots).  Raises
    :class:`~repro.core.errors.ReproError` on malformed logs, naming the
    offending slot.
    """
    if len(slot_log) != len(slot_rates):
        raise ReproError(
            f"slot_log and slot_rates lengths differ "
            f"({len(slot_log)} vs {len(slot_rates)})"
        )
    startup = played = rebuffer = 0
    rebuffer_events = 0
    stalled = False
    rate_sum = 0.0
    switches = 0
    smoothness = 0.0
    last_play_rate: float | None = None
    for i, state in enumerate(slot_log):
        rate = float(slot_rates[i])
        if state == SLOT_STARTUP:
            if played or rebuffer:
                raise ReproError(
                    f"slot {i}: startup slot after playback began"
                )
            if rate != 0.0:
                raise ReproError(
                    f"slot {i}: startup slot carries a nonzero bitrate ({rate})"
                )
            startup += 1
            stalled = False
        elif state == SLOT_PLAY:
            if rate <= 0.0:
                raise ReproError(
                    f"slot {i}: play slot with non-positive bitrate ({rate})"
                )
            played += 1
            rate_sum += rate
            if last_play_rate is not None and rate != last_play_rate:
                switches += 1
                smoothness += abs(rate - last_play_rate)
            last_play_rate = rate
            stalled = False
        elif state == SLOT_REBUFFER:
            if rate != 0.0:
                raise ReproError(
                    f"slot {i}: rebuffer slot carries a nonzero bitrate ({rate})"
                )
            rebuffer += 1
            if not stalled:
                rebuffer_events += 1
            stalled = True
        else:
            raise ReproError(
                f"slot {i}: unknown slot state {state!r} (expected "
                f"{SLOT_STARTUP!r}/{SLOT_PLAY!r}/{SLOT_REBUFFER!r})"
            )
    total = len(slot_log)
    mean_bitrate = rate_sum / played if played else 0.0
    played_chunks = max(1, played)
    rebuffer_ratio = rebuffer / total if total else 0.0
    score = mean_bitrate - smoothness / played_chunks - REBUFFER_WEIGHT * rebuffer_ratio
    return QoEMetrics(
        session_slots=total,
        startup_slots=startup,
        played_slots=played,
        rebuffer_slots=rebuffer,
        rebuffer_events=rebuffer_events,
        mean_bitrate=mean_bitrate,
        bitrate_switches=switches,
        smoothness_penalty=smoothness,
        score=score,
        tier=classify_tier(
            mean_bitrate, rebuffer_events, premium_bitrate=premium_bitrate
        ),
    )


def collect_qoe(result: AbrSessionResult) -> QoEMetrics:
    """QoE of a finished session, with registry instrumentation.

    Pure accounting over ``result.slot_log`` / ``result.slot_rates`` — an
    independent replay of the same logs through :func:`qoe_from_slot_log`
    must agree slot for slot (pinned by ``tests/test_abr_session.py``).
    """
    metrics = qoe_from_slot_log(result.slot_log, result.slot_rates)
    registry = active_registry()
    registry.counter("abr.qoe_sessions", tier=metrics.tier).inc()
    registry.counter("abr.rebuffer_events", profile=result.trace_name).inc(
        metrics.rebuffer_events
    )
    registry.histogram("abr.rebuffer_slots", profile=result.trace_name).observe(
        float(metrics.rebuffer_slots)
    )
    registry.histogram("abr.mean_bitrate", profile=result.trace_name).observe(
        metrics.mean_bitrate
    )
    return metrics
