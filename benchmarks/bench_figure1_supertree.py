"""Figure 1: the cluster backbone τ with source S, D=3, d=4, K=9 clusters."""

from __future__ import annotations

from conftest import report

from repro.cluster.analysis import analyze_clustered
from repro.cluster.protocol import ClusteredStreamingProtocol
from repro.cluster.supertree import build_supertree


def test_figure1_reproduction(benchmark):
    tree = benchmark.pedantic(build_supertree, args=(9, 3), rounds=1, iterations=1)
    tree.verify()
    # Paper figure: S feeds S_1..S_3; S_1 feeds S_4, S_5; S_2 feeds S_6, S_7;
    # S_3 feeds S_8, S_9 (0-indexed here).
    assert tree.root_clusters() == [0, 1, 2]
    assert tree.children_of(0) == [3, 4]
    assert tree.children_of(1) == [5, 6]
    assert tree.children_of(2) == [7, 8]

    lines = ["Figure 1 — backbone super-tree (K=9, D=3); 1-indexed as the paper"]
    lines.append("  S -> S_1, S_2, S_3")
    for cluster in range(3):
        kids = ", ".join(f"S_{c + 1}" for c in tree.children_of(cluster))
        lines.append(f"  S_{cluster + 1} -> {kids}  (plus its local S'_{cluster + 1})")
    report("figure1_supertree", "\n".join(lines))


def test_figure1_end_to_end(benchmark):
    """Stream through the full Figure 1 system (K=9, D=3, d=4)."""

    def run():
        protocol = ClusteredStreamingProtocol(
            [16] * 9, source_degree=3, degree=4, inter_cluster_latency=5
        )
        return analyze_clustered(protocol, num_packets=8)

    qos = benchmark.pedantic(run, rounds=1, iterations=1)
    assert qos.measured_max_delay <= qos.predicted_max_delay
    report(
        "figure1_end_to_end",
        "\n".join(
            [
                "Figure 1 system, measured (K=9, D=3, d=4, T_c=5, 16 nodes/cluster):",
                f"  worst-case startup delay: {qos.measured_max_delay} slots",
                f"  average startup delay:    {qos.measured_avg_delay:.2f} slots",
                f"  deterministic prediction: {qos.predicted_max_delay} slots",
                f"  Theorem 1 order bound:    {qos.theorem1_bound:.2f}",
            ]
        ),
    )
