"""Content-addressed schedule cache: LRU, disk layer, corruption safety."""

from __future__ import annotations

import os
import pickle

import pytest

import repro.exec.cache as cache_mod
from repro.exec.cache import CACHE_VERSION, ScheduleCache, ScheduleKey, default_cache
from repro.exec.compiler import build_protocol, compile_protocol
from repro.obs import MetricsRegistry
from repro.obs.registry import use_registry


def _key(num_slots=21, **overrides) -> ScheduleKey:
    fields = {
        "scheme": "multi-tree",
        "construction": "structured",
        "num_nodes": 7,
        "degree": 2,
        "num_slots": num_slots,
    }
    fields.update(overrides)
    return ScheduleKey(**fields)


def _builder(num_slots=21, calls=None):
    def build():
        if calls is not None:
            calls.append(1)
        return compile_protocol(build_protocol("multi-tree", 7, 2), num_slots)

    return build


class TestMemoryLayer:
    def test_second_lookup_hits_memory(self):
        cache = ScheduleCache()
        calls: list[int] = []
        provenance: dict = {}
        first = cache.get_or_compile(_key(), _builder(calls=calls), provenance)
        assert provenance["cache"] == "miss"
        second = cache.get_or_compile(_key(), _builder(calls=calls), provenance)
        assert provenance["cache"] == "memory"
        assert second is first
        assert calls == [1]

    def test_lru_eviction_order(self):
        cache = ScheduleCache(capacity=2)
        k1, k2, k3 = _key(21), _key(24), _key(27)
        cache.put(k1, "s1")
        cache.put(k2, "s2")
        cache.get(k1)  # refresh k1; k2 becomes least recent
        cache.put(k3, "s3")
        assert cache.get(k1) == "s1"
        assert cache.get(k2) is None
        assert cache.get(k3) == "s3"
        assert len(cache) == 2

    def test_hit_and_miss_counters(self):
        registry = MetricsRegistry()
        with use_registry(registry):
            cache = ScheduleCache()
            cache.get_or_compile(_key(), _builder())
            cache.get_or_compile(_key(), _builder())
        assert registry.counter("schedule_cache.miss").value == 1
        assert registry.counter("schedule_cache.hit", layer="memory").value == 1

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            ScheduleCache(capacity=0)


class TestDiskLayer:
    def test_disk_roundtrip_across_cache_instances(self, tmp_path):
        writer = ScheduleCache(disk_dir=tmp_path)
        schedule = writer.get_or_compile(_key(), _builder())
        reader = ScheduleCache(disk_dir=tmp_path)
        loaded, layer = reader.get_with_layer(_key())
        assert layer == "disk"
        assert loaded == schedule

    def test_disk_off_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert ScheduleCache().disk_dir is None

    def test_env_var_enables_disk(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        cache = ScheduleCache()
        assert cache.disk_dir == tmp_path

    def test_corrupted_entry_recompiles_not_crashes(self, tmp_path):
        writer = ScheduleCache(disk_dir=tmp_path)
        writer.get_or_compile(_key(), _builder())
        token_path = tmp_path / f"{_key().token()}.pkl"
        assert token_path.exists()
        token_path.write_bytes(b"not a pickle at all")
        reader = ScheduleCache(disk_dir=tmp_path)
        provenance: dict = {}
        schedule = reader.get_or_compile(_key(), _builder(), provenance)
        assert provenance["cache"] == "miss"
        assert schedule.num_slots == 21
        # The corrupt file was replaced by a fresh, loadable entry.
        with open(token_path, "rb") as fh:
            envelope = pickle.load(fh)
        assert envelope["version"] == CACHE_VERSION

    def test_version_skew_treated_as_miss(self, tmp_path):
        writer = ScheduleCache(disk_dir=tmp_path)
        writer.get_or_compile(_key(), _builder())
        token_path = tmp_path / f"{_key().token()}.pkl"
        envelope = pickle.loads(token_path.read_bytes())
        envelope["version"] = CACHE_VERSION + 1
        token_path.write_bytes(pickle.dumps(envelope))
        loaded, layer = ScheduleCache(disk_dir=tmp_path).get_with_layer(_key())
        assert loaded is None and layer is None

    def test_no_stray_tmp_files(self, tmp_path):
        cache = ScheduleCache(disk_dir=tmp_path)
        cache.get_or_compile(_key(), _builder())
        assert not list(tmp_path.glob("*.tmp"))


class TestDiskEviction:
    def _entry_size(self, tmp_path):
        probe = ScheduleCache(disk_dir=tmp_path)
        probe.get_or_compile(_key(21), _builder(21))
        size = (tmp_path / f"{_key(21).token()}.pkl").stat().st_size
        for path in tmp_path.glob("*.pkl"):
            path.unlink()
        return size

    def test_byte_budget_evicts_oldest(self, tmp_path):
        size = self._entry_size(tmp_path)
        registry = MetricsRegistry()
        cache = ScheduleCache(disk_dir=tmp_path, max_disk_bytes=int(size * 2.5))
        with use_registry(registry):
            cache.get_or_compile(_key(21), _builder(21))
            os.utime(tmp_path / f"{_key(21).token()}.pkl", (1, 1))
            cache.get_or_compile(_key(24), _builder(24))
            os.utime(tmp_path / f"{_key(24).token()}.pkl", (2, 2))
            cache.get_or_compile(_key(27), _builder(27))
        names = {path.stem for path in tmp_path.glob("*.pkl")}
        assert _key(27).token() in names  # just stored, always kept
        assert _key(21).token() not in names  # oldest, evicted
        evictions = [
            row for row in registry.rows()
            if row["name"] == "schedule_cache.evict"
        ]
        assert evictions and evictions[0]["value"] >= 1

    def test_just_stored_entry_survives_tiny_budget(self, tmp_path):
        cache = ScheduleCache(disk_dir=tmp_path, max_disk_bytes=1)
        cache.get_or_compile(_key(21), _builder(21))
        assert (tmp_path / f"{_key(21).token()}.pkl").exists()

    def test_disk_hit_refreshes_recency(self, tmp_path):
        ScheduleCache(disk_dir=tmp_path).get_or_compile(_key(21), _builder(21))
        path = tmp_path / f"{_key(21).token()}.pkl"
        os.utime(path, (1, 1))
        _, layer = ScheduleCache(disk_dir=tmp_path).get_with_layer(_key(21))
        assert layer == "disk"
        assert path.stat().st_mtime > 1  # hit bumped the LRU clock

    def test_env_var_sets_budget(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_MAX_BYTES", "4096")
        assert ScheduleCache().max_disk_bytes == 4096

    def test_bad_env_budget_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_MAX_BYTES", "lots")
        with pytest.raises(ValueError):
            ScheduleCache()

    def test_budget_must_be_positive(self):
        with pytest.raises(ValueError):
            ScheduleCache(max_disk_bytes=0)

    def test_unbounded_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_MAX_BYTES", raising=False)
        assert ScheduleCache().max_disk_bytes is None


class TestTokens:
    def test_token_embeds_cache_version(self, monkeypatch):
        before = _key().token()
        monkeypatch.setattr(cache_mod, "CACHE_VERSION", CACHE_VERSION + 1)
        assert _key().token() != before

    def test_token_is_stable(self):
        assert _key().token() == _key().token()

    def test_default_cache_is_a_singleton(self):
        assert default_cache() is default_cache()
