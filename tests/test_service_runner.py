"""Fleet runner: sharded execution, cache amortization, facade + export."""

from __future__ import annotations

import pytest

import repro
from repro.core.errors import ReproError
from repro.exec.executor import ExecutorPolicy
from repro.experiments import ExperimentSpec, run
from repro.reporting.export import read_fleet_report_json, write_fleet_report_json
from repro.service import (
    CapacityModel,
    FleetRunner,
    FleetSLOReport,
    FleetSpec,
    SessionSpec,
)

SERIAL = ExecutorPolicy(mode="serial")


def _small_fleet(**overrides) -> FleetSpec:
    defaults = dict(
        sessions=(
            SessionSpec(num_nodes=15, degree=3, num_packets=6, weight=2.0),
            SessionSpec(scheme="chain", num_nodes=8, num_packets=6),
        ),
        num_sessions=30,
        capacity=CapacityModel(source_fanout=1e6, backbone=1e6),
        seed=7,
    )
    defaults.update(overrides)
    return FleetSpec(**defaults)


class TestFleetRunner:
    def test_serial_run_shape(self):
        runner = FleetRunner(policy=SERIAL)
        result = runner.run(_small_fleet())
        report = result.report
        assert report.num_sessions == 30
        assert report.rejected == 0
        assert len(report.sessions) == report.admitted + report.degraded == 30
        assert len(result.decisions) == 30
        assert len(result.sessions) == 30
        assert result.executor_info["mode"] == "serial"
        ids = [slo.session_id for slo in report.sessions]
        assert ids == sorted(ids)

    def test_parallel_matches_serial_exactly(self):
        fleet = _small_fleet()
        serial = FleetRunner(policy=SERIAL).run(fleet).report
        parallel = FleetRunner(
            policy=ExecutorPolicy(max_workers=2, mode="parallel")
        ).run(fleet).report
        assert parallel == serial

    def test_one_cache_lookup_per_admitted_session(self):
        runner = FleetRunner(policy=SERIAL)
        report = runner.run(_small_fleet()).report
        # Two distinct configurations in the mix -> two compiles, the other
        # 28 admissions hit the shared cache.
        assert report.cache_misses == 2
        assert report.cache_hits == 28
        assert report.cache_hit_rate == pytest.approx(28 / 30)

    def test_shared_cache_amortizes_across_runs(self):
        runner = FleetRunner(policy=SERIAL)
        fleet = _small_fleet()
        runner.run(fleet)
        second = runner.run(fleet).report
        assert second.cache_misses == 0
        assert second.cache_hit_rate == 1.0

    def test_churned_sessions_score_truncated_prefix(self):
        fleet = _small_fleet(churn_rate=0.8, num_sessions=40)
        result = FleetRunner(policy=SERIAL).run(fleet)
        by_id = {slo.session_id: slo for slo in result.report.sessions}
        leavers = [s for s in result.sessions if s.leave_fraction is not None]
        assert leavers
        truncated = [by_id[s.session_id] for s in leavers if s.session_id in by_id]
        assert any(slo.num_packets < 6 for slo in truncated)
        assert all(slo.num_packets >= 1 for slo in truncated)
        stayers = [
            by_id[s.session_id]
            for s in result.sessions
            if s.leave_fraction is None and s.session_id in by_id
        ]
        assert all(slo.num_packets == 6 for slo in stayers)

    def test_capacity_pressure_rejects(self):
        fleet = _small_fleet(
            sessions=(SessionSpec(num_nodes=15, degree=3, num_packets=6),),
            capacity=CapacityModel(source_fanout=3.0, backbone=1e6),
            policy="reject",
            arrival="trace",
            arrival_slots=(0, 0, 0),
            num_sessions=3,
        )
        report = FleetRunner(policy=SERIAL).run(fleet).report
        assert report.admitted == 1
        assert report.rejected == 2
        assert report.reject_rate == pytest.approx(2 / 3)


class TestAbrSessions:
    def _abr_fleet(self, **overrides) -> FleetSpec:
        return _small_fleet(
            sessions=(
                SessionSpec(num_nodes=15, num_packets=6, abr_profile="onoff"),
                SessionSpec(scheme="chain", num_nodes=8, num_packets=6),
            ),
            num_sessions=16,
            **overrides,
        )

    def test_abr_sessions_carry_qoe(self):
        report = FleetRunner(policy=SERIAL).run(self._abr_fleet()).report
        abr = [s for s in report.sessions if s.qoe is not None]
        plain = [s for s in report.sessions if s.qoe is None]
        assert abr and plain
        assert all(s.label.endswith("abr-onoff") for s in abr)
        assert all(s.qoe["tier"] in ("premium", "standard", "degraded") for s in abr)
        assert dict(report.qoe_tiers) and sum(dict(report.qoe_tiers).values()) == len(abr)
        assert "qoe_tier" in abr[0].row()

    def test_parallel_matches_serial_with_abr(self):
        fleet = self._abr_fleet()
        serial = FleetRunner(policy=SERIAL).run(fleet).report
        parallel = FleetRunner(
            policy=ExecutorPolicy(max_workers=2, mode="parallel")
        ).run(fleet).report
        assert parallel == serial

    def test_abr_report_round_trips(self, tmp_path):
        report = FleetRunner(policy=SERIAL).run(self._abr_fleet()).report
        path = tmp_path / "fleet.json"
        write_fleet_report_json(report, path)
        loaded = read_fleet_report_json(path)
        assert loaded == report
        assert loaded.qoe_tiers == report.qoe_tiers

    def test_unknown_profile_rejected(self):
        with pytest.raises(ReproError, match="unknown ABR trace profile"):
            SessionSpec(abr_profile="lte")


class TestFacade:
    def test_kind_fleet_runs_fleet_spec(self):
        result = run(
            ExperimentSpec(kind="fleet", fleet=_small_fleet(), executor=SERIAL)
        )
        assert isinstance(result.metrics, FleetSLOReport)
        assert len(result.rows) == 30
        assert result.provenance["cache"]["misses"] == 2
        assert result.provenance["executor"]["mode"] == "serial"
        assert result.artifacts["report"] is result.metrics

    def test_default_fleet_built_from_scalars(self):
        result = run(
            ExperimentSpec(
                kind="fleet", scheme="chain", num_nodes=8, num_packets=4,
                executor=SERIAL,
            )
        )
        assert result.metrics.num_sessions == 100
        assert all(slo.label.startswith("chain") for slo in result.metrics.sessions)

    def test_rejects_wrong_fleet_type(self):
        with pytest.raises(ReproError):
            run(ExperimentSpec(kind="fleet", fleet={"num_sessions": 5}))

    def test_top_level_exports(self):
        for name in (
            "FleetSpec", "SessionSpec", "FleetRunner", "FleetSLOReport",
            "SessionManager", "CapacityModel",
        ):
            assert hasattr(repro, name)


class TestExportRoundTrip:
    def test_report_round_trips_through_json_file(self, tmp_path):
        report = FleetRunner(policy=SERIAL).run(_small_fleet()).report
        path = tmp_path / "fleet.json"
        write_fleet_report_json(report, path)
        assert read_fleet_report_json(path) == report

    def test_read_rejects_wrong_kind(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"format_version": 1, "kind": "nope", "report": {}}')
        with pytest.raises(ReproError):
            read_fleet_report_json(path)
