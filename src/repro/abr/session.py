"""Slot-synchronous adaptive-bitrate session model.

One ABR client streams a video of ``num_chunks`` chunks over a link whose
per-slot capacity follows a :class:`~repro.abr.traces.CapacityTrace`.  Each
chunk plays for ``chunk_slots`` slots and, encoded at ladder rung ``r``,
costs ``r * chunk_slots`` capacity units to download — so at rung ``r`` equal
to the link rate the download exactly races real time, the regime where the
paper's delay/buffer tradeoff lives.

Every slot runs two phases in a fixed order (mirroring the engine's
schedule/deliver split):

1. **playback** — before the client has buffered ``startup_chunks`` complete
   chunks the slot counts as *startup*; afterwards the player consumes one
   slot of buffered media (*play*) or, if the buffer is empty, stalls
   (*rebuffer*);
2. **download** — the slot's capacity budget flows into the chunk in flight;
   chunks completed in this phase become playable *next* slot (engine
   parity: a transmission arriving in slot ``t`` is usable at ``t+1``).

Rung choice is the buffer-aware estimate of :mod:`repro.abr.ladder`, with one
override — the **panic rule**: once playback has started and the runway
(buffered playable slots) falls to ``chunk_slots``, the client fetches the
lowest rung, abandoning any higher-rung chunk in flight.  The rule makes the
zero-rebuffer guarantee structural: if every slot's capacity covers the
lowest rung ``l``, a panic fetch costs ``l * chunk_slots`` units, completes
within ``chunk_slots`` download phases, and lands exactly when the buffer
would otherwise run dry — so such traces can never rebuffer (property-tested
in ``tests/test_abr_qoe.py``).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.abr.ladder import DEFAULT_LADDER, BandwidthEstimator, BitrateLadder, EstimatorConfig
from repro.abr.traces import CapacityTrace
from repro.core.errors import ReproError
from repro.obs.registry import active_registry

__all__ = [
    "AbrSessionResult",
    "AbrSessionSpec",
    "ChunkRecord",
    "run_session",
]

#: Slot-log states (the QoE partition alphabet).
SLOT_STARTUP = "startup"
SLOT_PLAY = "play"
SLOT_REBUFFER = "rebuffer"


@dataclass(frozen=True, slots=True)
class AbrSessionSpec:
    """Parameters of one ABR session.

    Attributes:
        num_chunks: video length in chunks.
        chunk_slots: playback duration of one chunk, in slots.
        startup_chunks: complete chunks buffered before playback starts
            (the prebuffer target — the session's *delay* knob, clamped to
            ``num_chunks`` for short videos).
        ladder: the bitrate ladder rungs are chosen from.
        estimator: bandwidth-estimator tuning.
        safety: headroom factor passed to
            :meth:`~repro.abr.ladder.BitrateLadder.rung_for`.
        max_buffer_chunks: stop prefetching new chunks while this many
            complete chunks sit unplayed (``None`` = fetch the whole video
            ahead); the panic rule ignores the cap, and the cap never sits
            below the startup target (prebuffering must be able to finish).
        max_slots: hard ceiling on session length (guards against a trace
            that starves the session indefinitely); ``None`` derives a
            generous default from the video length.
    """

    num_chunks: int
    chunk_slots: int = 4
    startup_chunks: int = 2
    ladder: BitrateLadder = DEFAULT_LADDER
    estimator: EstimatorConfig = field(default_factory=EstimatorConfig)
    safety: float = 0.9
    max_buffer_chunks: int | None = 8
    max_slots: int | None = None

    def __post_init__(self) -> None:
        if self.num_chunks < 1:
            raise ReproError(f"num_chunks must be >= 1, got {self.num_chunks}")
        if self.chunk_slots < 1:
            raise ReproError(f"chunk_slots must be >= 1, got {self.chunk_slots}")
        if self.startup_chunks < 1:
            raise ReproError(
                f"startup_chunks must be >= 1, got {self.startup_chunks}"
            )
        if not 0 < self.safety <= 1:
            raise ReproError(f"safety must be in (0, 1], got {self.safety}")
        if self.max_buffer_chunks is not None and self.max_buffer_chunks < 1:
            raise ReproError(
                f"max_buffer_chunks must be >= 1 or None, got {self.max_buffer_chunks}"
            )
        if self.max_slots is not None and self.max_slots < 1:
            raise ReproError(f"max_slots must be >= 1 or None, got {self.max_slots}")

    @property
    def startup_target(self) -> int:
        """Prebuffer target clamped to the video length."""
        return min(self.startup_chunks, self.num_chunks)

    @property
    def slot_ceiling(self) -> int:
        """Effective value of ``max_slots``."""
        if self.max_slots is not None:
            return self.max_slots
        # Worst tolerated case: every chunk at the highest rung over a link
        # averaging far below it, plus generous slack.
        span = self.num_chunks * self.chunk_slots
        return 1000 * span + 1000


@dataclass(frozen=True, slots=True)
class ChunkRecord:
    """One downloaded chunk: which rung, and when the download ran."""

    index: int
    rate: float
    start_slot: int
    finish_slot: int

    @property
    def download_slots(self) -> int:
        return self.finish_slot - self.start_slot + 1


@dataclass(frozen=True, slots=True)
class AbrSessionResult:
    """Everything a finished session recorded.

    ``slot_log`` and ``slot_rates`` are parallel, one entry per slot:
    the slot's state (``startup``/``play``/``rebuffer``) and the bitrate
    played in it (0.0 for non-play slots).  QoE accounting
    (:func:`repro.abr.qoe.collect_qoe`) derives everything from these plus
    ``chunks`` — so an independent replay can re-check it slot for slot.
    """

    spec: AbrSessionSpec
    trace_name: str
    slot_log: tuple[str, ...]
    slot_rates: tuple[float, ...]
    chunks: tuple[ChunkRecord, ...]
    startup_slots: int
    max_buffer_slots: int
    abandoned_chunks: int

    def __post_init__(self) -> None:
        if len(self.slot_log) != len(self.slot_rates):
            raise ReproError(
                f"slot_log and slot_rates lengths differ "
                f"({len(self.slot_log)} vs {len(self.slot_rates)})"
            )

    @property
    def session_slots(self) -> int:
        return len(self.slot_log)


@dataclass(slots=True)
class _InFlight:
    """The chunk currently downloading."""

    index: int
    rate: float
    needed: float
    got: float
    start_slot: int


def run_session(spec: AbrSessionSpec, trace: CapacityTrace) -> AbrSessionResult:
    """Run one ABR session to completion (all chunks played).

    Deterministic in ``(spec, trace)``; a session that fails to finish within
    ``spec.slot_ceiling`` slots raises :class:`~repro.core.errors.ReproError`.
    """
    estimator = BandwidthEstimator(config=spec.estimator)
    ready: deque[float] = deque()  # rates of downloaded, unplayed chunks
    records: list[ChunkRecord] = []
    slot_log: list[str] = []
    slot_rates: list[float] = []

    in_flight: _InFlight | None = None
    next_chunk = 0
    playing_rate = 0.0
    playing_remaining = 0
    played_chunks = 0
    started = False
    startup_slots = 0
    max_buffer = 0
    abandoned = 0
    lowest = spec.ladder.lowest
    # A cap below the startup target would deadlock prebuffering: playback
    # never starts, so the cap (which only yields to panic *after* start)
    # never lifts.  Raise it to the target.
    buffer_cap = (
        None
        if spec.max_buffer_chunks is None
        else max(spec.max_buffer_chunks, spec.startup_target)
    )

    slot = 0
    while played_chunks < spec.num_chunks:
        if slot >= spec.slot_ceiling:
            raise ReproError(
                f"ABR session on trace {trace.name!r} exceeded "
                f"{spec.slot_ceiling} slots ({played_chunks}/{spec.num_chunks} "
                "chunks played); the trace starves even the lowest rung"
            )

        # ---- playback phase -------------------------------------------
        if not started and len(ready) >= spec.startup_target:
            started = True
        if not started:
            slot_log.append(SLOT_STARTUP)
            slot_rates.append(0.0)
            startup_slots += 1
        else:
            if playing_remaining == 0 and ready:
                playing_rate = ready.popleft()
                playing_remaining = spec.chunk_slots
            if playing_remaining > 0:
                slot_log.append(SLOT_PLAY)
                slot_rates.append(playing_rate)
                playing_remaining -= 1
                if playing_remaining == 0:
                    played_chunks += 1
            else:
                slot_log.append(SLOT_REBUFFER)
                slot_rates.append(0.0)

        if played_chunks >= spec.num_chunks:
            slot += 1
            break

        # ---- download phase -------------------------------------------
        runway = playing_remaining + len(ready) * spec.chunk_slots
        panic = started and runway <= spec.chunk_slots
        if panic and in_flight is not None and in_flight.rate > lowest:
            # Abandon the optimistic fetch; restart the same chunk at the
            # floor so it can land before the buffer drains.
            abandoned += 1
            in_flight = _InFlight(
                index=in_flight.index,
                rate=lowest,
                needed=lowest * spec.chunk_slots,
                got=0.0,
                start_slot=slot,
            )
        budget = trace.capacity_at(slot)
        while budget > 1e-12:
            if in_flight is None:
                if next_chunk >= spec.num_chunks:
                    break
                if not panic and buffer_cap is not None and len(ready) >= buffer_cap:
                    break
                if panic:
                    rate = lowest
                else:
                    rate = spec.ladder.rung_for(
                        estimator.estimate(runway), safety=spec.safety
                    )
                in_flight = _InFlight(
                    index=next_chunk,
                    rate=rate,
                    needed=rate * spec.chunk_slots,
                    got=0.0,
                    start_slot=slot,
                )
                next_chunk += 1
            take = min(budget, in_flight.needed - in_flight.got)
            in_flight.got += take
            budget -= take
            if in_flight.got >= in_flight.needed - 1e-9:
                duration = slot - in_flight.start_slot + 1
                estimator.observe(in_flight.needed / duration)
                records.append(
                    ChunkRecord(
                        index=in_flight.index,
                        rate=in_flight.rate,
                        start_slot=in_flight.start_slot,
                        finish_slot=slot,
                    )
                )
                ready.append(in_flight.rate)
                in_flight = None
                runway = playing_remaining + len(ready) * spec.chunk_slots
                panic = started and runway <= spec.chunk_slots

        buffer_now = playing_remaining + len(ready) * spec.chunk_slots
        if buffer_now > max_buffer:
            max_buffer = buffer_now
        slot += 1

    registry = active_registry()
    registry.counter("abr.sessions", profile=trace.name).inc()
    registry.counter("abr.chunks", profile=trace.name).inc(len(records))
    registry.histogram("abr.session_slots", profile=trace.name).observe(float(slot))

    return AbrSessionResult(
        spec=spec,
        trace_name=trace.name,
        slot_log=tuple(slot_log),
        slot_rates=tuple(slot_rates),
        chunks=tuple(records),
        startup_slots=startup_slots,
        max_buffer_slots=max_buffer,
        abandoned_chunks=abandoned,
    )
