"""Proposition 2: arbitrary-N cascade — O(log N) neighbors, O(log^2 N) worst
delay, two-packet buffers."""

from __future__ import annotations

import math

from conftest import report

from repro.core.engine import simulate
from repro.core.metrics import collect_metrics
from repro.hypercube.cascade import (
    cascade_plan,
    proposition2_neighbor_bound,
    worst_case_delay_bound,
)
from repro.hypercube.protocol import HypercubeCascadeProtocol
from repro.reporting.tables import format_table


def run():
    rows = []
    for n in (10, 25, 60, 100, 250, 500, 1000):
        protocol = HypercubeCascadeProtocol(n)
        trace = simulate(protocol, protocol.slots_for_packets(10))
        metrics = collect_metrics(trace, num_packets=10)
        delay_bound = worst_case_delay_bound(n)
        neighbor_bound = proposition2_neighbor_bound(n)
        assert metrics.max_startup_delay <= delay_bound
        assert metrics.max_neighbors <= neighbor_bound
        assert metrics.max_buffer <= 2
        rows.append(
            (n, len(cascade_plan(n)), metrics.max_startup_delay,
             round(delay_bound, 1), metrics.max_buffer,
             metrics.max_neighbors, neighbor_bound,
             round(3 * math.log2(n), 1))
        )
    return rows


def test_prop2_reproduction(benchmark):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    # Delay grows clearly sub-quadratically in log N but super-logarithmically
    # at cube boundaries; neighbors stay within O(log N).
    delays = [r[2] for r in rows]
    assert delays == sorted(delays)
    text = format_table(
        ["N", "cubes", "max delay", "O(log^2) bound", "buffer",
         "max neighbors", "bound", "3 log2 N"],
        rows,
        title="Proposition 2 — arbitrary-N cascade, measured vs bounds",
    )
    report("prop2_arbitrary_n", text)
