"""Trace-level metrics: the paper's four QoS quantities.

Table 1 of the paper compares schemes on four axes — maximum playback delay,
average playback delay, buffer size, and number of neighbors.  This module
computes all four from a :class:`~repro.core.engine.SimTrace`.
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import mean

from repro.core.engine import SimTrace
from repro.core.playback import PlaybackSummary, summarize_playback

__all__ = ["SchemeMetrics", "collect_metrics", "truncate_arrivals"]


@dataclass(frozen=True, slots=True)
class SchemeMetrics:
    """Aggregate QoS metrics for one simulated scheme (one Table 1 row).

    Attributes:
        num_nodes: receivers measured.
        max_startup_delay: worst-case playback delay over nodes (slots).
        avg_startup_delay: mean playback delay over nodes (slots).
        max_buffer: worst-case peak buffer occupancy over nodes (packets).
        avg_buffer: mean peak buffer occupancy over nodes (packets).
        max_neighbors: worst-case distinct-counterparty count over nodes.
        avg_neighbors: mean distinct-counterparty count over nodes.
        per_node: node id -> :class:`PlaybackSummary`.
    """

    num_nodes: int
    max_startup_delay: int
    avg_startup_delay: float
    max_buffer: int
    avg_buffer: float
    max_neighbors: int
    avg_neighbors: float
    per_node: dict[int, PlaybackSummary]

    def row(self) -> dict[str, float]:
        """Flat dict for table rendering (drops per-node detail)."""
        return {
            "num_nodes": self.num_nodes,
            "max_delay": self.max_startup_delay,
            "avg_delay": round(self.avg_startup_delay, 3),
            "max_buffer": self.max_buffer,
            "avg_buffer": round(self.avg_buffer, 3),
            "max_neighbors": self.max_neighbors,
            "avg_neighbors": round(self.avg_neighbors, 3),
        }


def truncate_arrivals(arrivals: dict[int, int], num_packets: int) -> dict[int, int]:
    """Restrict an arrival trace to the contiguous prefix ``0..num_packets-1``.

    Simulations run for a finite horizon, so the last few packets of each node's
    trace are edge-distorted (later packets have not arrived yet).  Metrics are
    computed over a fixed prefix so all nodes are compared on the same packets.
    """
    if num_packets < 1:
        raise ValueError(f"num_packets must be positive, got {num_packets}")
    out = {p: s for p, s in arrivals.items() if p < num_packets}
    if len(out) != num_packets:
        missing = sorted(set(range(num_packets)) - set(out))[:5]
        raise ValueError(
            f"arrival trace incomplete for prefix of {num_packets} packets; "
            f"missing {missing} — simulate more slots"
        )
    return out


def collect_metrics(trace: SimTrace, *, num_packets: int) -> SchemeMetrics:
    """Compute the Table 1 quantities from a finished simulation trace.

    Args:
        trace: a completed simulation.
        num_packets: the packet prefix over which delays/buffers are measured;
            every node must have received all of packets ``0..num_packets-1``.
    """
    per_node: dict[int, PlaybackSummary] = {}
    neighbors: dict[int, int] = {}
    for nid, state in trace.nodes.items():
        arrivals = truncate_arrivals(state.arrivals, num_packets)
        per_node[nid] = summarize_playback(arrivals)
        neighbors[nid] = len(state.neighbors)

    if not per_node:
        raise ValueError("trace contains no receiver nodes")

    delays = [s.startup_delay for s in per_node.values()]
    buffers = [s.buffer_peak for s in per_node.values()]
    neigh = list(neighbors.values())
    return SchemeMetrics(
        num_nodes=len(per_node),
        max_startup_delay=max(delays),
        avg_startup_delay=mean(delays),
        max_buffer=max(buffers),
        avg_buffer=mean(buffers),
        max_neighbors=max(neigh),
        avg_neighbors=mean(neigh),
        per_node=per_node,
    )
