"""Span tracing across the compile -> cache -> replay -> aggregate pipeline.

A :class:`SpanTracer` records named, timed spans with ``trace_id`` /
``span_id`` / ``parent_id`` linkage.  Nested :meth:`SpanTracer.span`
scopes parent automatically through a per-tracer stack.  Spans carry a
wall-clock start (`for cross-process alignment in Chrome's trace viewer)
and a ``perf_counter``-measured duration (monotonic, immune to clock
steps), plus free-form ``attrs``.

**Cross-process spans.**  The sweep executor ships a *span context*
(``trace_id`` + parent span id) to workers through its initializer
(:func:`install_span_context`).  Worker code wraps task execution in
:func:`worker_span`; :func:`drain_worker_spans` pops the recorded span
dicts so the executor can piggy-back them on registry snapshots and the
parent tracer can :meth:`SpanTracer.adopt` them.  With no context
installed, :func:`worker_span` is a no-op — zero overhead off.

Span ids embed the process id, so ids minted concurrently in pool
workers never collide.  Export to Chrome's ``chrome://tracing`` /
Perfetto JSON via :func:`repro.reporting.export.write_chrome_trace_json`.

This module (like the rest of ``repro/obs/``) is the project's sanctioned
home for wall-clock reads — :func:`wall_time_s` re-exports ``time.time``
so other layers can timestamp ledger records without tripping lint rule
REP002.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator

__all__ = [
    "Span",
    "SpanTracer",
    "SPAN_SCHEMA",
    "drain_worker_spans",
    "install_span_context",
    "wall_time_s",
    "worker_span",
]

#: Keys every serialized span dict carries, in order.
SPAN_SCHEMA = (
    "name", "trace_id", "span_id", "parent_id",
    "start_s", "dur_s", "pid", "attrs",
)


def wall_time_s() -> float:
    """Current wall-clock time in seconds (the sanctioned REP002 read)."""
    return time.time()


@dataclass(frozen=True, slots=True)
class Span:
    """One finished span."""

    name: str
    trace_id: str
    span_id: str
    parent_id: str | None
    start_s: float
    dur_s: float
    pid: int
    attrs: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {key: getattr(self, key) for key in SPAN_SCHEMA}

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "Span":
        return cls(**{key: payload[key] for key in SPAN_SCHEMA})


class SpanTracer:
    """Records spans for one trace.

    Args:
        trace_id: explicit trace id; defaults to a pid + wall-clock-derived
            id unique enough for ledger correlation.
    """

    __slots__ = ("trace_id", "finished", "_stack", "_next")

    def __init__(self, trace_id: str | None = None) -> None:
        if trace_id is None:
            trace_id = f"t{os.getpid():x}-{int(wall_time_s() * 1e6):x}"
        self.trace_id = trace_id
        self.finished: list[Span] = []
        self._stack: list[str] = []
        self._next = 1

    def _new_span_id(self) -> str:
        span_id = f"s{os.getpid():x}-{self._next}"
        self._next += 1
        return span_id

    @property
    def current_span_id(self) -> str | None:
        """Innermost open span id (parent for new children), if any."""
        return self._stack[-1] if self._stack else None

    @contextmanager
    def span(
        self, name: str, *, parent_id: str | None = None, **attrs: Any
    ) -> Iterator[str]:
        """Open a span scope; yields the new span id.

        Parents to the innermost open span unless ``parent_id`` is given.
        The span is recorded on scope exit, even if the body raises.
        """
        span_id = self._new_span_id()
        if parent_id is None:
            parent_id = self.current_span_id
        start_wall = wall_time_s()
        start_perf = time.perf_counter()
        self._stack.append(span_id)
        try:
            yield span_id
        finally:
            self._stack.pop()
            self.finished.append(Span(
                name=name,
                trace_id=self.trace_id,
                span_id=span_id,
                parent_id=parent_id,
                start_s=start_wall,
                dur_s=time.perf_counter() - start_perf,
                pid=os.getpid(),
                attrs=dict(attrs),
            ))

    def adopt(self, spans: list[dict[str, Any]]) -> None:
        """Fold serialized spans (e.g. drained from a worker) into this
        trace, rewriting their ``trace_id`` to match."""
        for payload in spans:
            span = Span.from_dict(payload)
            if span.trace_id != self.trace_id:
                span = Span(
                    name=span.name, trace_id=self.trace_id,
                    span_id=span.span_id, parent_id=span.parent_id,
                    start_s=span.start_s, dur_s=span.dur_s,
                    pid=span.pid, attrs=span.attrs,
                )
            self.finished.append(span)

    def context(self) -> dict[str, Any]:
        """Serializable context to ship to workers (initializer payload)."""
        return {"trace_id": self.trace_id, "parent_id": self.current_span_id}

    def to_dicts(self) -> list[dict[str, Any]]:
        """All finished spans as JSON-ready dicts, in completion order."""
        return [span.to_dict() for span in self.finished]

    def __len__(self) -> int:
        return len(self.finished)


# -------------------------------------------------------- worker-side state
#
# Pool workers have no SpanTracer of their own; the executor initializer
# installs a context, worker code records through worker_span(), and the
# executor drains the buffer after each task to piggy-back spans on the
# registry snapshot.

_CONTEXT: dict[str, Any] | None = None
_BUFFER: list[dict[str, Any]] = []
_SEQ = 0


def install_span_context(context: dict[str, Any] | None) -> None:
    """Install (or clear, with ``None``) this process's span context."""
    global _CONTEXT
    # The span context/buffer are worker-process-local by design: installed
    # once by the pool initializer, drained by the task wrapper, and merged
    # in the parent.  Nothing here is shared across processes.
    _CONTEXT = context  # repro-lint: disable=REP005 -- per-process span slot
    _BUFFER.clear()  # repro-lint: disable=REP005 -- per-process span buffer


@contextmanager
def worker_span(name: str, **attrs: Any) -> Iterator[None]:
    """Record a span in the installed worker context; no-op without one."""
    if _CONTEXT is None:
        yield
        return
    global _SEQ
    # Worker-local counter: span ids embed the pid, so per-process
    # sequences cannot collide after the parent merges the buffers.
    _SEQ += 1  # repro-lint: disable=REP005 -- per-process span sequence
    span_id = f"w{os.getpid():x}-{_SEQ}"
    start_wall = wall_time_s()
    start_perf = time.perf_counter()
    try:
        yield
    finally:
        # repro-lint: disable is line-scoped; the buffer is drained and
        # returned to the parent by drain_worker_spans below.
        _BUFFER.append(Span(  # repro-lint: disable=REP005 -- per-process buffer
            name=name,
            trace_id=_CONTEXT["trace_id"],
            span_id=span_id,
            parent_id=_CONTEXT.get("parent_id"),
            start_s=start_wall,
            dur_s=time.perf_counter() - start_perf,
            pid=os.getpid(),
            attrs=dict(attrs),
        ).to_dict())


def drain_worker_spans() -> list[dict[str, Any]]:
    """Pop every span recorded since the last drain (worker-side)."""
    spans = list(_BUFFER)
    _BUFFER.clear()  # repro-lint: disable=REP005 -- drain of per-process buffer
    return spans
