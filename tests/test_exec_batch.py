"""Unit tests for the vectorized batch-replay kernel (``repro.exec.batch``).

The slot-for-slot identity against the scalar path and the engine is
property-tested in ``test_exec_properties.py``; here we pin the kernel's
contract surface — validation, chunking, mask determinism, counters, the
``BatchMetrics`` accessors, and the ``replay_point`` batch-of-1 shim.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import ReproError
from repro.exec import (
    BatchMetrics,
    bernoulli_mask,
    bernoulli_masks,
    compile_schedule,
    replay_batch,
    replay_point,
    spawn_seeds,
)
from repro.obs import MetricsRegistry
from repro.obs.registry import use_registry


@pytest.fixture(scope="module")
def schedule():
    return compile_schedule("multi-tree", 15, 2, num_packets=8)


class TestSpawnSeeds:
    def test_children_depend_only_on_master_and_index(self):
        # Session i's stream is fixed by (master, i) — not by how many
        # siblings were spawned alongside it.
        a = spawn_seeds(7, 4)
        b = spawn_seeds(7, 9)
        for i in range(4):
            ra = np.random.default_rng(a[i]).random(16)
            rb = np.random.default_rng(b[i]).random(16)
            assert np.array_equal(ra, rb)

    def test_distinct_masters_diverge(self):
        a = np.random.default_rng(spawn_seeds(0, 1)[0]).random(16)
        b = np.random.default_rng(spawn_seeds(1, 1)[0]).random(16)
        assert not np.array_equal(a, b)

    def test_negative_count_rejected(self):
        with pytest.raises(ReproError):
            spawn_seeds(0, -1)

    def test_zero_is_empty(self):
        assert spawn_seeds(0, 0) == ()


class TestBernoulliMasks:
    def test_rows_match_scalar_masks(self, schedule):
        seeds = [3, np.random.SeedSequence(11), 42]
        rates = [0.1, 0.4, 0.9]
        masks = bernoulli_masks(schedule, rates, seeds)
        assert masks is not None and masks.shape == (3, schedule.size)
        for b, (seed, rate) in enumerate(zip(seeds, rates)):
            solo = bernoulli_mask(schedule, rate, seed)
            assert np.array_equal(masks[b], np.asarray(solo, dtype=bool))

    def test_all_zero_rates_return_none(self, schedule):
        assert bernoulli_masks(schedule, [0.0, 0.0], [1, 2]) is None

    def test_length_mismatch_rejected(self, schedule):
        with pytest.raises(ReproError, match="2 seeds but 1 drop rates"):
            bernoulli_masks(schedule, [0.1], [1, 2])

    def test_rate_out_of_range_rejected(self, schedule):
        with pytest.raises(ReproError, match=r"drop rate must be in \[0, 1\]"):
            bernoulli_masks(schedule, [1.5], [1])


class TestReplayBatchValidation:
    def test_empty_seed_batch_rejected(self, schedule):
        with pytest.raises(ReproError, match="at least one session seed"):
            replay_batch(schedule, (), 0.0, num_packets=4)

    def test_rate_vector_length_mismatch(self, schedule):
        with pytest.raises(ReproError, match="2 seeds but 3 drop rates"):
            replay_batch(schedule, (1, 2), (0.1, 0.1, 0.1), num_packets=4)

    def test_rate_out_of_range(self, schedule):
        with pytest.raises(ReproError, match=r"drop rate must be in \[0, 1\]"):
            replay_batch(schedule, (1,), -0.2, num_packets=4)

    def test_horizon_outside_compiled_range(self, schedule):
        with pytest.raises(ReproError, match="replay horizon"):
            replay_batch(
                schedule, (1,), 0.0, num_packets=4,
                num_slots=schedule.num_slots + 1,
            )

    def test_nonpositive_packets(self, schedule):
        with pytest.raises(ReproError, match="num_packets must be positive"):
            replay_batch(schedule, (1,), 0.0, num_packets=0)

    def test_session_index_out_of_range(self, schedule):
        batch = replay_batch(schedule, (1, 2), 0.05, num_packets=4)
        with pytest.raises(ReproError, match=r"outside batch \[0, 2\)"):
            batch.metrics(2)


class TestReplayBatch:
    def test_scalar_rate_broadcasts(self, schedule):
        batch = replay_batch(schedule, (1, 2, 3), 0.2, num_packets=6)
        assert batch.drop_rates == (0.2, 0.2, 0.2)
        assert batch.num_sessions == 3

    def test_chunked_run_is_identical(self, schedule):
        seeds = spawn_seeds(0, 12)
        full = replay_batch(schedule, seeds, 0.15, num_packets=6)
        # Budget of 1 element forces one-session kernel chunks.
        tiny = replay_batch(
            schedule, seeds, 0.15, num_packets=6, element_budget=1
        )
        for field in ("residual", "available", "max_delay", "avg_delay",
                      "max_buffer", "avg_buffer", "node_delays",
                      "node_buffers"):
            assert np.array_equal(getattr(full, field), getattr(tiny, field))

    def test_node_columns_optional(self, schedule):
        batch = replay_batch(
            schedule, (1,), 0.0, num_packets=6, keep_node_columns=False
        )
        assert batch.node_delays is None and batch.node_buffers is None

    def test_node_column_shape(self, schedule):
        batch = replay_batch(schedule, (1, 2), 0.1, num_packets=6)
        assert batch.node_delays is not None
        assert batch.node_delays.shape == (2, batch.num_nodes)
        assert batch.node_buffers is not None
        assert batch.node_buffers.shape == (2, batch.num_nodes)
        # Aggregates are exactly the column reductions.
        assert int(batch.max_delay[0]) == int(batch.node_delays[0].max())
        assert float(batch.avg_buffer[1]) == float(batch.node_buffers[1].mean())

    def test_rows_shape(self, schedule):
        batch = replay_batch(schedule, (5, 6), 0.1, num_packets=6)
        rows = batch.rows()
        assert len(rows) == 2
        assert rows[0]["seed"] == 5 and rows[1]["seed"] == 6
        assert rows[0]["drop_rate"] == 0.1
        assert rows[0]["max_delay"] == int(batch.max_delay[0])
        assert rows[1]["residual"] == int(batch.residual[1])

    def test_counters(self, schedule):
        registry = MetricsRegistry()
        with use_registry(registry):
            replay_batch(schedule, (1, 2, 3, 4), 0.1, num_packets=6)
        sessions = registry.counter("sweep.batch_sessions", scheme="multi-tree")
        assert sessions.value == 4
        tx = registry.counter("sweep.batched_tx", scheme="multi-tree")
        assert tx.value == 4 * schedule.size

    def test_loss_free_batch_is_uniform(self, schedule):
        batch = replay_batch(schedule, (1, 2, 3), 0.0, num_packets=6)
        assert batch.metrics(0) == batch.metrics(1) == batch.metrics(2)
        assert int(batch.residual[0]) == 0

    def test_isinstance_batch_metrics(self, schedule):
        batch = replay_batch(schedule, (1,), 0.0, num_packets=4)
        assert isinstance(batch, BatchMetrics)


class TestReplayPointShim:
    def test_shim_equals_batch_of_one(self, schedule):
        for seed, rate in ((0, 0.0), (9, 0.25), (123, 0.6)):
            point = replay_point(
                schedule, num_packets=6, seed=seed, drop_rate=rate
            )
            batch = replay_batch(schedule, (seed,), rate, num_packets=6)
            assert point == batch.metrics(0), (seed, rate)

    def test_shim_keeps_historical_counters(self, schedule):
        registry = MetricsRegistry()
        with use_registry(registry):
            replay_point(schedule, num_packets=6, seed=1, drop_rate=0.1)
        points = registry.counter("sweep.points", scheme="multi-tree")
        assert points.value == 1
        tx = registry.counter("sweep.replayed_tx", scheme="multi-tree")
        assert tx.value == schedule.size
        hist = registry.histogram("sweep.max_delay", scheme="multi-tree")
        assert hist.count == 1
