"""Ext-A (deepened): *measured* playback hiccups under mid-stream churn.

The appendix states that up to ~d^2 nodes may suffer hiccups per churn repair
and reports that an empirical evaluation was performed but omitted.  This
bench restores it: packets keep flowing while the appendix repair algorithms
run, and real deadline misses are counted per node.

Expected shape: leaf departures are nearly free; interior departures disrupt
the relocated nodes and their subtrees for a transient bounded by the tree
height; joins are clean (the joiner starts on a complete packet window).
"""

from __future__ import annotations

from conftest import report

from repro.reporting.tables import format_table
from repro.trees.live import ScheduledChurn, churn_experiment
from repro.workloads.churn import ChurnEvent


def scenario(name, num_nodes, degree, churn, packets=36, lazy=False):
    protocol, rep = churn_experiment(
        num_nodes, degree, churn, num_packets=packets, lazy=lazy
    )
    return (
        name,
        "lazy" if lazy else "eager",
        len(churn),
        rep.total_hiccups,
        len(rep.hiccup_nodes),
        len(rep.relocated_nodes),
        round(rep.mean_hiccups(), 2),
    )


def delete(slot, victim):
    return ScheduledChurn(slot, ChurnEvent("delete"), victim=victim)


def add(slot):
    return ScheduledChurn(slot, ChurnEvent("add"))


def run():
    rows = []
    rows.append(scenario("no churn", 30, 3, []))
    rows.append(scenario("leaf departure", 30, 3, [delete(12, 29)]))
    rows.append(scenario("interior departure", 30, 3, [delete(12, 1)]))
    rows.append(scenario("join", 30, 3, [add(12)]))
    burst = [delete(10, 1), delete(13, 5), delete(16, 9), add(20), add(23)]
    rows.append(scenario("burst", 30, 3, burst))
    rows.append(scenario("burst", 30, 3, burst, lazy=True))
    return rows


def test_churn_hiccup_measurement(benchmark):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    by_name = {}
    for row in rows:
        by_name.setdefault(row[0], []).append(row)
    assert by_name["no churn"][0][3] == 0
    assert by_name["join"][0][3] == 0
    assert by_name["leaf departure"][0][3] <= 2
    interior = by_name["interior departure"][0]
    assert 0 < interior[3] < 36
    # Disruption is a transient confined to a neighborhood, not the swarm.
    assert interior[4] <= 12
    for row in by_name["burst"]:
        assert row[3] < 30 * 6  # far below nodes * horizon

    text = format_table(
        ["scenario", "mode", "events", "total hiccups", "nodes hiccuping",
         "nodes relocated", "mean hiccups/node"],
        rows,
        title=(
            "Measured playback hiccups under mid-stream churn "
            "(N=30, d=3, 36-packet horizon)"
        ),
    )
    report("ablation_hiccups", text)
