"""Public API integrity: every exported name resolves, errors form a proper
hierarchy, and protocol defaults match the paper's model."""

from __future__ import annotations

import importlib

import pytest

import repro
from repro.core import errors
from repro.core.protocol import StreamingProtocol

SUBPACKAGES = [
    "repro",
    "repro.core",
    "repro.trees",
    "repro.hypercube",
    "repro.cluster",
    "repro.baselines",
    "repro.graphs",
    "repro.theory",
    "repro.repair",
    "repro.obs",
    "repro.exec",
    "repro.check",
    "repro.abr",
    "repro.control",
    "repro.experiments",
    "repro.workloads",
    "repro.reporting",
]


class TestExports:
    @pytest.mark.parametrize("module_name", SUBPACKAGES)
    def test_all_names_resolve(self, module_name):
        module = importlib.import_module(module_name)
        assert hasattr(module, "__all__"), f"{module_name} lacks __all__"
        for name in module.__all__:
            assert hasattr(module, name), f"{module_name}.{name} missing"

    @pytest.mark.parametrize("module_name", SUBPACKAGES)
    def test_all_sorted_unique(self, module_name):
        module = importlib.import_module(module_name)
        names = list(module.__all__)
        assert len(names) == len(set(names)), f"duplicates in {module_name}.__all__"

    def test_version(self):
        assert repro.__version__ == "2.2.0"

    def test_star_import_is_clean(self):
        namespace: dict = {}
        exec("from repro import *", namespace)  # noqa: S102 - deliberate
        assert "MultiTreeProtocol" in namespace
        assert "ExperimentSpec" in namespace
        assert "run" in namespace
        assert "replay_batch" in namespace
        assert "simulate" not in namespace  # v1 re-export removed in v2.0


class TestErrorHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        for name in errors.__all__:
            cls = getattr(errors, name)
            assert issubclass(cls, errors.ReproError)

    def test_constraint_violations_carry_context(self):
        err = errors.SendCapacityViolation("boom", slot=4, node=7)
        assert err.slot == 4
        assert err.node == 7
        assert isinstance(err, errors.ConstraintViolation)

    def test_catchable_as_base(self):
        with pytest.raises(errors.ReproError):
            raise errors.ScheduleError("x")


class TestProtocolDefaults:
    def test_paper_model_defaults(self):
        class Minimal(StreamingProtocol):
            node_ids = (1,)
            source_ids = frozenset({0})

            def transmissions(self, slot, view):
                return []

        protocol = Minimal()
        assert protocol.send_capacity(1) == 1  # ordinary receiver
        assert protocol.recv_capacity(1) == 1
        assert protocol.packet_available_slot(99) == 0  # pre-recorded
        assert protocol.describe() == "Minimal"


class TestProtocolReusability:
    """Every protocol must be simulatable repeatedly (reset lifecycle)."""

    @pytest.mark.parametrize(
        "factory",
        [
            lambda: __import__("repro.trees", fromlist=["MultiTreeProtocol"]).MultiTreeProtocol(9, 3),
            lambda: __import__("repro.hypercube", fromlist=["HypercubeCascadeProtocol"]).HypercubeCascadeProtocol(10),
            lambda: __import__("repro.hypercube", fromlist=["GroupedHypercubeProtocol"]).GroupedHypercubeProtocol(10, 2),
            lambda: __import__("repro.baselines", fromlist=["ChainProtocol"]).ChainProtocol(6),
            lambda: __import__("repro.baselines", fromlist=["RandomGossipProtocol"]).RandomGossipProtocol(8, 3, seed=4),
            lambda: __import__("repro.trees", fromlist=["ChurningMultiTreeProtocol"]).ChurningMultiTreeProtocol(9, 3, []),
        ],
        ids=["multi-tree", "cascade", "grouped", "chain", "gossip", "churning"],
    )
    def test_two_runs_identical(self, factory):
        from repro.core import simulate

        protocol = factory()
        first = simulate(protocol, 12, strict_duplicates=False)
        second = simulate(protocol, 12, strict_duplicates=False)
        for node in protocol.node_ids:
            assert dict(first.arrivals(node)) == dict(second.arrivals(node))
