"""Tests for structured event tracing and sinks (repro.obs.events)."""

from __future__ import annotations

import json

import pytest

from repro.obs.events import (
    EVENT_SCHEMA,
    TX_DELIVERED,
    TX_SENT,
    Event,
    EventTracer,
    JsonlSink,
    RingBufferSink,
    count_events,
    read_events_jsonl,
    replay_arrivals,
)


class TestSchema:
    def test_every_name_constant_is_in_schema(self):
        import repro.obs.events as ev

        names = {
            getattr(ev, attr)
            for attr in ev.__all__
            if attr.isupper() and attr != "EVENT_SCHEMA"
        }
        assert names == set(EVENT_SCHEMA)

    def test_schema_entries_shape(self):
        for name, (emitter, fields) in EVENT_SCHEMA.items():
            assert emitter in {"engine", "repair", "playback", "churn", "service"}, name
            assert all(isinstance(f, str) for f in fields), name


class TestEvent:
    def test_round_trip(self):
        event = Event(name=TX_SENT, slot=4, fields={"sender": 0, "receiver": 2, "packet": 1})
        assert Event.from_dict(event.to_dict()) == event

    def test_to_dict_flattens_fields(self):
        d = Event(name="x", slot=1, fields={"a": 2}).to_dict()
        assert d == {"event": "x", "slot": 1, "a": 2}


class TestRingBufferSink:
    def test_keeps_tail(self):
        sink = RingBufferSink(capacity=3)
        for i in range(5):
            sink.emit(Event(name="e", slot=i))
        assert [e.slot for e in sink.events] == [2, 3, 4]
        assert sink.total_emitted == 5

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            RingBufferSink(capacity=0)


class TestJsonlSink:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "events.jsonl"
        events = [
            Event(name=TX_SENT, slot=0, fields={"sender": 0, "receiver": 1, "packet": 0}),
            Event(name=TX_DELIVERED, slot=1,
                  fields={"sender": 0, "receiver": 1, "packet": 0, "new": True}),
        ]
        sink = JsonlSink(path)
        for e in events:
            sink.emit(e)
        sink.close()
        assert sink.lines_written == 2
        assert read_events_jsonl(path) == events
        # One compact JSON object per line.
        lines = path.read_text().splitlines()
        assert all(json.loads(line)["event"] for line in lines)

    def test_counts_survive_round_trip(self, tmp_path):
        """JSONL written -> reloaded -> same per-name counters (satellite)."""
        path = tmp_path / "events.jsonl"
        tracer = EventTracer(JsonlSink(path))
        tracer.emit(TX_SENT, 0, sender=0, receiver=1, packet=0)
        tracer.emit(TX_SENT, 1, sender=0, receiver=2, packet=0)
        tracer.emit(TX_DELIVERED, 1, sender=0, receiver=1, packet=0, new=True)
        tracer.close()
        assert count_events(read_events_jsonl(path)) == tracer.counts


class TestEventTracer:
    def test_fans_out_and_counts(self):
        a, b = RingBufferSink(), RingBufferSink()
        tracer = EventTracer(a)
        tracer.add_sink(b)
        tracer.emit("e1", 0)
        tracer.emit("e1", 1)
        tracer.emit("e2", 1, node=3)
        assert tracer.counts == {"e1": 2, "e2": 1}
        assert len(a.events) == len(b.events) == 3
        assert b.events[-1].fields == {"node": 3}

    def test_context_manager_closes_sinks(self, tmp_path):
        path = tmp_path / "e.jsonl"
        with EventTracer(JsonlSink(path)) as tracer:
            tracer.emit("e", 0)
        assert read_events_jsonl(path) == [Event(name="e", slot=0)]


class TestReplay:
    def test_replay_first_arrival_wins(self):
        events = [
            Event(name=TX_DELIVERED, slot=3,
                  fields={"sender": 0, "receiver": 5, "packet": 0, "new": True}),
            Event(name=TX_DELIVERED, slot=4,
                  fields={"sender": 1, "receiver": 5, "packet": 0, "new": False}),
            Event(name=TX_DELIVERED, slot=4,
                  fields={"sender": 1, "receiver": 6, "packet": 0, "new": True}),
            Event(name=TX_SENT, slot=2,
                  fields={"sender": 0, "receiver": 5, "packet": 1}),
        ]
        assert replay_arrivals(events) == {5: {0: 3}, 6: {0: 4}}
