#!/usr/bin/env python
"""A global CDN with heterogeneous edge clusters, in real units.

Scenario: a pre-recorded premiere is distributed worldwide. Well-provisioned
metro PoPs (plenty of peer RAM) run the multi-tree scheme for minimal startup
delay; constrained edge clusters (set-top boxes, two-packet buffers) run the
hypercube cascades.  The backbone is the paper's super-tree τ with T_c chosen
from measured intercontinental RTTs, and the Section 2 provisioning
arithmetic converts slot counts into wall-clock startup times for the
paper's MPEG-1 reference stream.

Run:  python examples/global_cdn_mixed.py
"""

from repro.cluster import ClusteredStreamingProtocol, analyze_clustered
from repro.reporting.treeviz import render_supertree
from repro.theory import paper_example_profile

REGIONS = [
    # (name, receivers, scheme)
    ("Frankfurt", 45, "multi-tree"),
    ("Virginia", 40, "multi-tree"),
    ("Singapore", 30, "multi-tree"),
    ("Sao Paulo", 24, "hypercube"),
    ("Mumbai", 28, "hypercube"),
    ("Sydney", 18, "hypercube"),
    ("Johannesburg", 14, "hypercube"),
]


def main() -> None:
    profile = paper_example_profile()
    print("Stream profile:", profile.describe())
    # One backbone hop ≈ the 30 ms one-way delay: T_c in slots is the batch
    # count needed to cover it — here the batching already folds it in, so a
    # small integer T_c models the residual cross-region queueing.
    t_c = 4

    protocol = ClusteredStreamingProtocol(
        [r[1] for r in REGIONS],
        source_degree=3,
        degree=2,
        inter_cluster_latency=t_c,
        cluster_schemes=[r[2] for r in REGIONS],
    )
    print("\n" + render_supertree(protocol.supertree, names=[r[0] for r in REGIONS]))

    qos = analyze_clustered(protocol, num_packets=10)
    print(f"\n{protocol.describe()}")
    print(f"viewers: {qos.total_receivers}; worst startup "
          f"{qos.measured_max_delay} slots, average {qos.measured_avg_delay:.1f}")
    wall = profile.slots_to_seconds(qos.measured_max_delay)
    print(f"in wall-clock terms for the paper's MPEG-1 stream: worst startup "
          f"≈ {wall:.2f} s (batch of {profile.batch_size} packets per slot)")

    print("\nPer-region startup (first cluster node):")
    for cluster, (name, _, scheme) in enumerate(REGIONS):
        shift = protocol.cluster_schedule_shift(cluster)
        print(f"  {name:13s} [{scheme:10s}] local schedule starts at slot {shift}")


if __name__ == "__main__":
    main()
