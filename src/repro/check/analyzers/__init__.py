"""Model-based analyzer passes (REP005–REP008) over a :class:`ProjectModel`.

Where :mod:`repro.check.lint` is strictly per-file, the passes in this
package consume the whole-project model (:mod:`repro.check.model`): the
process-safety pass chases the call graph from pool-worker entry points,
the metric-name pass resolves emitted names against the declared registry
in :mod:`repro.obs.names`, the frozen-spec pass knows every
``@dataclass(frozen=True)`` in the tree, and the taint pass flows
nondeterminism sources through assignments to result/metric/ledger sinks.

Each pass is one module exposing ``RULE`` (its id), ``DESCRIPTION``, and
``analyze(model) -> list[LintViolation]``.  :func:`run_analyzers` runs a
selection of passes and applies the per-file pragma suppressions the model
already parsed, so ``# repro-lint: disable=REP005`` (file- or line-level)
works exactly as it does for the per-file rules.
"""

from __future__ import annotations

from repro.check.lint import LintViolation
from repro.check.model import ProjectModel

from . import frozen_spec, metric_names, process_safety, taint

__all__ = [
    "ANALYZER_RULES",
    "run_analyzers",
]

_PASSES = (process_safety, metric_names, frozen_spec, taint)

#: rule id -> one-line description (docs/CHECKS.md holds the catalogue).
ANALYZER_RULES: dict[str, str] = {
    module.RULE: module.DESCRIPTION for module in _PASSES
}


def run_analyzers(
    model: ProjectModel, rules: frozenset[str] | None = None
) -> list[LintViolation]:
    """Run the analyzer passes over ``model`` and return their findings.

    Args:
        model: the shared project model.
        rules: restrict to these rule ids (None = every pass).

    Findings are pragma-filtered per file and come back sorted by
    ``(path, line, col, rule)`` like :func:`repro.check.lint.lint_paths`.
    """
    violations: list[LintViolation] = []
    by_path = {info.path: info.suppressions for info in model}
    for module in _PASSES:
        if rules is not None and module.RULE not in rules:
            continue
        for violation in module.analyze(model):
            suppressions = by_path.get(violation.path)
            if suppressions is not None and suppressions.is_disabled(
                violation.rule, violation.line
            ):
                continue
            violations.append(violation)
    return sorted(violations, key=lambda v: (v.path, v.line, v.col, v.rule))
