"""Tumbling-window time-series aggregation for fleet telemetry.

A :class:`TimeSeries` buckets observations into fixed-width tumbling
windows keyed by an integer time coordinate (for fleet runs: the session
arrival slot).  Each window independently aggregates three kinds of
series, mirroring the registry instrument set:

* **counter** — monotone totals per window; :meth:`rate` divides by the
  window width to expose per-slot rates (throughput, admissions).
* **gauge** — last value written in the window wins (matching
  :class:`repro.obs.registry.Gauge` semantics).
* **sketch** — a :class:`repro.obs.sketch.QuantileSketch` per window, so
  each window answers p50/p99 queries with the sketch's documented
  relative-error bound.

Windows are created lazily on first touch, so sparse series stay sparse.
:meth:`rows` emits one flat dict per ``(window, series)`` pair for table
rendering, and :meth:`to_dict` serializes the whole series (sketches via
their own ``to_dict``) for export.

The fleet runner feeds a ``TimeSeries`` from shard-completion callbacks
(see :class:`repro.service.runner.FleetTelemetry`); nothing here touches
wall clocks — time is whatever integer coordinate the caller supplies.
"""

from __future__ import annotations

from typing import Any

from .sketch import DEFAULT_RELATIVE_ERROR, QuantileSketch

__all__ = ["TimeSeries", "WindowStats"]


class WindowStats:
    """Aggregates for one tumbling window (created lazily)."""

    __slots__ = ("counters", "gauges", "sketches")

    def __init__(self) -> None:
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        self.sketches: dict[str, QuantileSketch] = {}


class TimeSeries:
    """Tumbling-window aggregation over an integer time coordinate.

    Args:
        window: window width in time units (slots); each window ``w``
            covers ``[w * window, (w + 1) * window)``.
        relative_error: error bound forwarded to per-window sketches.
    """

    __slots__ = ("window", "relative_error", "_windows")

    def __init__(
        self,
        window: int = 8,
        *,
        relative_error: float = DEFAULT_RELATIVE_ERROR,
    ) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        if not 0 <= relative_error < 1:
            raise ValueError(
                f"relative_error must be in [0, 1), got {relative_error}"
            )
        self.window = window
        self.relative_error = relative_error
        self._windows: dict[int, WindowStats] = {}

    # ------------------------------------------------------------ ingestion
    def _window_of(self, time: int) -> WindowStats:
        if time < 0:
            raise ValueError(f"time coordinate must be >= 0, got {time}")
        key = time // self.window
        stats = self._windows.get(key)
        if stats is None:
            stats = self._windows[key] = WindowStats()
        return stats

    def count(self, name: str, time: int, amount: float = 1.0) -> None:
        """Add ``amount`` to counter ``name`` in ``time``'s window."""
        stats = self._window_of(time)
        stats.counters[name] = stats.counters.get(name, 0.0) + amount

    def gauge(self, name: str, time: int, value: float) -> None:
        """Set gauge ``name`` in ``time``'s window (last write wins)."""
        self._window_of(time).gauges[name] = value

    def observe(self, name: str, time: int, value: float) -> None:
        """Feed ``value`` into the per-window sketch for ``name``."""
        stats = self._window_of(time)
        sketch = stats.sketches.get(name)
        if sketch is None:
            sketch = stats.sketches[name] = QuantileSketch(self.relative_error)
        sketch.add(value)

    # -------------------------------------------------------------- queries
    @property
    def num_windows(self) -> int:
        return len(self._windows)

    def windows(self) -> list[int]:
        """Sorted window indices that received any data."""
        return sorted(self._windows)

    def total(self, name: str) -> float:
        """Sum of counter ``name`` across all windows."""
        return sum(
            stats.counters.get(name, 0.0) for stats in self._windows.values()
        )

    def series(self, name: str) -> list[tuple[int, float]]:
        """``(window, total)`` pairs for counter ``name`` (sorted, dense
        over the touched range; untouched windows report 0)."""
        if not self._windows:
            return []
        lo, hi = min(self._windows), max(self._windows)
        return [
            (w, self._windows[w].counters.get(name, 0.0) if w in self._windows else 0.0)
            for w in range(lo, hi + 1)
        ]

    def rate(self, name: str) -> list[tuple[int, float]]:
        """``(window, per-slot rate)`` pairs for counter ``name``."""
        return [(w, total / self.window) for w, total in self.series(name)]

    def last(self, name: str) -> list[tuple[int, float]]:
        """``(window, value)`` pairs for gauge ``name`` (touched windows)."""
        return [
            (w, self._windows[w].gauges[name])
            for w in sorted(self._windows)
            if name in self._windows[w].gauges
        ]

    def quantile(self, name: str, q: float) -> list[tuple[int, float]]:
        """``(window, q-th percentile)`` for sketch series ``name``."""
        return [
            (w, self._windows[w].sketches[name].quantile(q))
            for w in sorted(self._windows)
            if name in self._windows[w].sketches
        ]

    # ------------------------------------------------------------ rendering
    def rows(self) -> list[dict[str, Any]]:
        """One flat dict per (window, series) pair, table-ready."""
        out: list[dict[str, Any]] = []
        for w in sorted(self._windows):
            stats = self._windows[w]
            start = w * self.window
            for name in sorted(stats.counters):
                total = stats.counters[name]
                out.append({
                    "window": w, "start_slot": start, "series": name,
                    "kind": "counter", "value": total,
                    "rate": total / self.window,
                })
            for name in sorted(stats.gauges):
                out.append({
                    "window": w, "start_slot": start, "series": name,
                    "kind": "gauge", "value": stats.gauges[name],
                })
            for name in sorted(stats.sketches):
                sketch = stats.sketches[name]
                out.append({
                    "window": w, "start_slot": start, "series": name,
                    "kind": "sketch", "count": sketch.count,
                    "p50": sketch.quantile(50), "p99": sketch.quantile(99),
                    "max": sketch.max,
                })
        return out

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable dump of every window."""
        return {
            "window": self.window,
            "relative_error": self.relative_error,
            "windows": {
                str(w): {
                    "counters": dict(stats.counters),
                    "gauges": dict(stats.gauges),
                    "sketches": {
                        name: sketch.to_dict()
                        for name, sketch in stats.sketches.items()
                    },
                }
                for w, stats in sorted(self._windows.items())
            },
        }
