"""Tests for the run ledger and bench history (repro.reporting.ledger)."""

from __future__ import annotations

import json

import pytest

import repro
from repro.core.errors import ReproError
from repro.exec.executor import ExecutorPolicy
from repro.experiments import ExperimentSpec, run
from repro.reporting.ledger import (
    LEDGER_ENV_VAR,
    LEDGER_VERSION,
    RunLedger,
    append_bench_history,
    bench_history_records,
    default_ledger,
    run_record,
)


class TestRunLedger:
    def test_append_stamps_envelope(self, tmp_path):
        ledger = RunLedger(tmp_path / "nested" / "ledger.jsonl")
        stamped = ledger.append({"record": "run", "x": 1})
        assert stamped["ledger_version"] == LEDGER_VERSION
        assert stamped["repro_version"] == repro.__version__
        assert stamped["time_s"] > 0
        assert stamped["x"] == 1
        assert ledger.records() == [stamped]

    def test_explicit_time_s_preserved(self, tmp_path):
        ledger = RunLedger(tmp_path / "l.jsonl")
        stamped = ledger.append({"record": "run", "time_s": 123.0})
        assert stamped["time_s"] == 123.0

    def test_rejects_non_dict(self, tmp_path):
        with pytest.raises(ReproError):
            RunLedger(tmp_path / "l.jsonl").append(["not", "a", "dict"])

    def test_missing_file_is_empty(self, tmp_path):
        ledger = RunLedger(tmp_path / "absent.jsonl")
        assert ledger.records() == []
        assert len(ledger) == 0

    def test_torn_and_foreign_lines_skipped(self, tmp_path):
        path = tmp_path / "l.jsonl"
        ledger = RunLedger(path)
        ledger.append({"record": "run", "n": 1})
        with path.open("a") as fh:
            fh.write("[1, 2, 3]\n")       # valid JSON, not a dict
            fh.write("\n")                 # blank
            fh.write('{"record": "run"')  # torn final line
        records = ledger.records()
        assert len(records) == 1
        assert records[0]["n"] == 1

    def test_append_only_accumulates(self, tmp_path):
        ledger = RunLedger(tmp_path / "l.jsonl")
        for i in range(5):
            ledger.append({"record": "run", "i": i})
        assert [r["i"] for r in ledger] == [0, 1, 2, 3, 4]
        assert len(ledger) == 5

    def test_tail(self, tmp_path):
        ledger = RunLedger(tmp_path / "l.jsonl")
        for i in range(4):
            ledger.append({"i": i})
        assert [r["i"] for r in ledger.tail(2)] == [2, 3]
        assert [r["i"] for r in ledger.tail(99)] == [0, 1, 2, 3]
        assert ledger.tail(0) == []
        with pytest.raises(ReproError):
            ledger.tail(-1)


class TestDefaultLedger:
    def test_unset_env_means_none(self, monkeypatch):
        monkeypatch.delenv(LEDGER_ENV_VAR, raising=False)
        assert default_ledger() is None
        monkeypatch.setenv(LEDGER_ENV_VAR, "  ")
        assert default_ledger() is None

    def test_env_names_the_path(self, monkeypatch, tmp_path):
        monkeypatch.setenv(LEDGER_ENV_VAR, str(tmp_path / "env.jsonl"))
        ledger = default_ledger()
        assert ledger is not None
        assert ledger.path == tmp_path / "env.jsonl"


class TestRunRecord:
    def test_facade_appends_one_record_per_run(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        spec = ExperimentSpec(
            scheme="chain", num_nodes=8, degree=1, num_packets=4,
            executor=ExecutorPolicy(mode="serial"),
        )
        run(spec, ledger=path)
        run(spec, ledger=RunLedger(path))
        records = RunLedger(path).records()
        assert len(records) == 2
        for record in records:
            assert record["record"] == "run"
            assert record["spec"]["scheme"] == "chain"
            assert record["spec"]["kind"] == "stream"
            assert record["rows"] == 1
            assert record["timing_s"] >= 0
            assert "cache" in record["provenance"]
            json.dumps(record)  # self-contained plain JSON

    def test_env_var_default(self, monkeypatch, tmp_path):
        path = tmp_path / "env-ledger.jsonl"
        monkeypatch.setenv(LEDGER_ENV_VAR, str(path))
        run(ExperimentSpec(
            scheme="chain", num_nodes=6, degree=1, num_packets=3,
            executor=ExecutorPolicy(mode="serial"),
        ))
        assert len(RunLedger(path)) == 1

    def test_no_ledger_no_file(self, monkeypatch, tmp_path):
        monkeypatch.delenv(LEDGER_ENV_VAR, raising=False)
        monkeypatch.chdir(tmp_path)
        run(ExperimentSpec(
            scheme="chain", num_nodes=6, degree=1, num_packets=3,
            executor=ExecutorPolicy(mode="serial"),
        ))
        assert list(tmp_path.iterdir()) == []

    def test_fleet_spec_summary(self, tmp_path):
        fleet = repro.FleetSpec(
            sessions=(repro.SessionSpec(num_nodes=15, num_packets=4),),
            num_sessions=6,
        )
        spec = ExperimentSpec(
            kind="fleet", fleet=fleet, executor=ExecutorPolicy(mode="serial")
        )
        result = run(spec)
        record = run_record(spec, result)
        assert record["spec"]["fleet_sessions"] == 6
        assert record["spec"]["aggregation"] == "exact"
        assert "run_until_converged" not in record["spec"]


class TestBenchHistory:
    def test_validation(self, tmp_path):
        path = tmp_path / "h.jsonl"
        with pytest.raises(ReproError):
            append_bench_history(path, "b", -1.0)
        with pytest.raises(ReproError):
            append_bench_history(path, "b", 1.0, threshold=1.0)

    def test_first_entry_has_no_baseline(self, tmp_path):
        record = append_bench_history(tmp_path / "h.jsonl", "fleet_scale", 2.5)
        assert record["record"] == "bench"
        assert record["wall_clock_s"] == 2.5
        assert "baseline_s" not in record
        assert "regression" not in record

    def test_regression_flagged_over_threshold(self, tmp_path):
        path = tmp_path / "h.jsonl"
        ok = append_bench_history(path, "b", 1.2, baseline_s=1.0)
        assert ok["regression"] is False
        bad = append_bench_history(path, "b", 2.0, baseline_s=1.0)
        assert bad["regression"] is True
        assert bad["speedup"] == pytest.approx(0.5)

    def test_records_filter_by_name(self, tmp_path):
        path = tmp_path / "h.jsonl"
        append_bench_history(path, "a", 1.0)
        append_bench_history(path, "b", 2.0)
        append_bench_history(path, "a", 1.1)
        RunLedger(path).append({"record": "run"})  # ignored by the filter
        assert len(bench_history_records(path)) == 3
        names = [r["wall_clock_s"] for r in bench_history_records(path, name="a")]
        assert names == [1.0, 1.1]
