"""Workload and sweep generators for the benchmark harness."""

from repro.workloads.arrivals import (
    poisson_arrival_slots,
    trace_arrival_slots,
    uniform_arrival_slots,
)
from repro.workloads.churn import (
    ChurnEvent,
    alternating_trace,
    apply_trace,
    flash_crowd_trace,
    random_trace,
)
from repro.workloads.parallel import (
    cascade_cell,
    default_workers,
    multi_tree_cell,
)
from repro.workloads.faults import (
    bernoulli_drop,
    compose_any,
    link_blackout,
    slot_blackout,
)
from repro.workloads.sweeps import (
    complete_tree_populations,
    degree_sweep,
    figure4_populations,
    iter_configurations,
    log_spaced_populations,
    special_hypercube_populations,
)

__all__ = [
    "ChurnEvent",
    "alternating_trace",
    "apply_trace",
    "bernoulli_drop",
    "cascade_cell",
    "compose_any",
    "default_workers",
    "link_blackout",
    "slot_blackout",
    "complete_tree_populations",
    "degree_sweep",
    "figure4_populations",
    "flash_crowd_trace",
    "iter_configurations",
    "log_spaced_populations",
    "multi_tree_cell",
    "poisson_arrival_slots",
    "random_trace",
    "special_hypercube_populations",
    "trace_arrival_slots",
    "uniform_arrival_slots",
]
