"""Process-parallel parameter sweeps.

Large sweeps (Figure 4 at fine granularity, Table 1 matrices) decompose
perfectly across processes — each (N, d) cell is independent.  This module
provides a small map-style runner over ``concurrent.futures`` following the
message-passing decomposition style of the HPC guides: workers receive plain
picklable task tuples and return plain results; no shared state.

Instrumentation crosses the process boundary the same way: each task runs
against a fresh :class:`~repro.obs.MetricsRegistry` installed as the
thread-local :func:`~repro.obs.active_registry`, its picklable snapshot rides
back with the result, and the parent merges every snapshot into the registry
the caller passed to :func:`parallel_sweep` — so worker counters (cells
evaluated, delay histograms) aggregate exactly as if the sweep had run
in-process.

The evaluation functions live at module scope so they pickle under the
``spawn`` start method as well as ``fork``.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from functools import partial

from repro.core.errors import ReproError
from repro.obs.registry import MetricsRegistry, active_registry, use_registry

__all__ = ["parallel_sweep", "multi_tree_cell", "cascade_cell", "default_workers"]


def default_workers() -> int:
    """A conservative worker count (leave one core for the parent)."""
    return max(1, (os.cpu_count() or 2) - 1)


def multi_tree_cell(task: tuple[int, int]) -> tuple[int, int, int]:
    """Worker: worst-case multi-tree delay for one ``(N, d)`` cell."""
    n, d = task
    from repro.trees.vectorized import worst_case_delay_fast

    delay = worst_case_delay_fast(n, d)
    registry = active_registry()
    registry.counter("sweep.cells", scheme="multi-tree", degree=str(d)).inc()
    registry.histogram("sweep.delay", scheme="multi-tree", degree=str(d)).observe(delay)
    return n, d, delay


def cascade_cell(task: tuple[int]) -> tuple[int, int, float]:
    """Worker: hypercube cascade worst/average delay for one ``N``."""
    (n,) = task
    from repro.hypercube.cascade import expected_average_delay, expected_worst_delay

    worst = expected_worst_delay(n)
    registry = active_registry()
    registry.counter("sweep.cells", scheme="hypercube-cascade").inc()
    registry.histogram("sweep.delay", scheme="hypercube-cascade").observe(worst)
    return n, worst, expected_average_delay(n)


def _snapshotting_task(worker, task):
    """Run one task against a fresh registry; return (result, snapshot)."""
    registry = MetricsRegistry()
    with use_registry(registry):
        result = worker(task)
    return result, registry.snapshot()


def parallel_sweep(
    worker,
    tasks,
    *,
    max_workers: int | None = None,
    chunksize: int = 8,
    registry: MetricsRegistry | None = None,
):
    """Evaluate ``worker`` over ``tasks`` across processes, order-preserving.

    Args:
        worker: a module-level function taking one task tuple.
        tasks: iterable of picklable task tuples.
        max_workers: process count (default: cores - 1).  ``1`` short-circuits
            to an in-process loop (useful under coverage or debuggers).
        chunksize: tasks per IPC batch.
        registry: when given, every task runs against an isolated registry
            (workers record via :func:`~repro.obs.active_registry`) and the
            per-task snapshots are merged into this one — the process-safe
            metrics path.  ``None`` skips all snapshotting.
    """
    tasks = list(tasks)
    if not tasks:
        return []
    if max_workers is not None and max_workers < 1:
        raise ReproError(f"max_workers must be >= 1, got {max_workers}")
    workers = max_workers or default_workers()
    run = worker if registry is None else partial(_snapshotting_task, worker)
    if workers == 1 or len(tasks) <= 2:
        raw = [run(task) for task in tasks]
    else:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            raw = list(pool.map(run, tasks, chunksize=chunksize))
    if registry is None:
        return raw
    results = []
    for result, snapshot in raw:
        registry.merge(snapshot)
        results.append(result)
    return results
