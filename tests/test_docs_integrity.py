"""Documentation integrity: files and bench targets the docs reference exist."""

from __future__ import annotations

import re
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent
DOCS = [ROOT / "DESIGN.md", ROOT / "EXPERIMENTS.md", ROOT / "docs" / "PAPER_MAP.md"]


def referenced_paths(text: str):
    # `path`-style references that look like files in this repository.
    for match in re.findall(r"`([\w./-]+\.(?:py|md|txt|json|toml))`", text):
        if "/" in match or match.endswith((".md", ".toml")):
            yield match


class TestDocReferences:
    @pytest.mark.parametrize("doc", DOCS, ids=lambda p: p.name)
    def test_docs_exist(self, doc):
        assert doc.exists()

    @pytest.mark.parametrize("doc", DOCS, ids=lambda p: p.name)
    def test_referenced_files_exist(self, doc):
        text = doc.read_text()
        missing = []
        for ref in referenced_paths(text):
            candidates = [
                ROOT / ref,
                ROOT / "src" / ref,
                ROOT / "src" / "repro" / ref.replace("repro/", ""),
            ]
            if not any(c.exists() for c in candidates):
                missing.append(ref)
        assert not missing, f"{doc.name} references missing files: {missing}"

    def test_every_bench_is_indexed_in_design(self):
        design = (ROOT / "DESIGN.md").read_text()
        experiments = (ROOT / "EXPERIMENTS.md").read_text()
        for bench in sorted((ROOT / "benchmarks").glob("bench_*.py")):
            assert (
                bench.name in design or bench.name in experiments
            ), f"{bench.name} not indexed in DESIGN.md or EXPERIMENTS.md"

    def test_experiment_index_covers_all_figures_and_tables(self):
        design = (ROOT / "DESIGN.md").read_text()
        for item in (
            "Figure 1", "Figure 2", "Figure 3", "Figure 4", "Figure 5",
            "Figure 6", "Figure 7", "Table 1",
            "Thm 1", "Thm 2", "Thm 3", "Thm 4", "Prop 1", "Prop 2",
        ):
            assert item in design, f"DESIGN.md experiment index lacks {item}"

    def test_readme_examples_exist(self):
        readme = (ROOT / "README.md").read_text()
        for name in re.findall(r"`(\w+\.py)` —", readme):
            assert (ROOT / "examples" / name).exists(), name
