"""Closed-form bounds and degree optimization (Section 2.3, Table 1)."""

from repro.theory.bounds import (
    Table1Row,
    hypercube_arbitrary_claims,
    hypercube_special_claims,
    multi_tree_claims,
    table1,
    theorem2_bound,
    theorem2_height,
    theorem3_lower_bound,
    theorem4_bound,
    worst_case_delay_bound,
)
from repro.theory.provisioning import StreamProfile, mpeg1_profile, paper_example_profile
from repro.theory.scaling import SHAPES, ScalingFit, best_scaling, fit_scaling
from repro.theory.degree import (
    crossover_population,
    delay_approximation,
    delay_derivative,
    f2,
    f3,
    optimal_degree,
    optimal_degree_exact,
)

__all__ = [
    "SHAPES",
    "ScalingFit",
    "StreamProfile",
    "Table1Row",
    "best_scaling",
    "fit_scaling",
    "mpeg1_profile",
    "paper_example_profile",
    "crossover_population",
    "delay_approximation",
    "delay_derivative",
    "f2",
    "f3",
    "hypercube_arbitrary_claims",
    "hypercube_special_claims",
    "multi_tree_claims",
    "optimal_degree",
    "optimal_degree_exact",
    "table1",
    "theorem2_bound",
    "theorem2_height",
    "theorem3_lower_bound",
    "theorem4_bound",
    "worst_case_delay_bound",
]
