"""Ablations of design choices DESIGN.md calls out:

* paper start rule (wait for one packet from every tree) vs trace-optimal
  start — delay and buffer cost of the simpler rule;
* live prebuffering — exactly d extra slots;
* structured vs greedy construction — identical guarantees, different
  realized per-node delays.
"""

from __future__ import annotations

from statistics import mean

from conftest import report

from repro.core.playback import buffer_peak
from repro.reporting.tables import format_table
from repro.trees.analysis import all_playback_delays, optimal_startup_delay
from repro.trees.forest import MultiTreeForest
from repro.trees.schedule import LIVE_PREBUFFERED, ScheduleParams, arrival_trace


def start_rule_rows():
    rows = []
    for n, d in ((50, 2), (100, 3), (400, 3)):
        forest = MultiTreeForest.construct(n, d)
        paper = all_playback_delays(forest)
        optimal = {i: optimal_startup_delay(forest, i) for i in forest.real_nodes}
        traces = arrival_trace(forest, 4 * d * forest.height)
        paper_buf = [buffer_peak(traces[i], paper[i]) for i in forest.real_nodes]
        opt_buf = [buffer_peak(traces[i], optimal[i]) for i in forest.real_nodes]
        rows.append(
            (n, d, max(paper.values()), max(optimal.values()),
             round(mean(paper.values()) - mean(optimal.values()), 2),
             max(paper_buf), max(opt_buf))
        )
        assert max(optimal.values()) <= max(paper.values())
        assert all(o <= p for o, p in zip(opt_buf, paper_buf))
    return rows


def construction_rows():
    rows = []
    for n, d in ((100, 2), (100, 3), (500, 3)):
        per = {}
        for construction in ("structured", "greedy"):
            forest = MultiTreeForest.construct(n, d, construction)
            delays = all_playback_delays(forest)
            per[construction] = (max(delays.values()), mean(delays.values()))
        rows.append(
            (n, d, per["structured"][0], round(per["structured"][1], 2),
             per["greedy"][0], round(per["greedy"][1], 2))
        )
        # Identical worst-case guarantee.
        assert abs(per["structured"][0] - per["greedy"][0]) <= d
    return rows


def live_rows():
    rows = []
    for n, d in ((60, 2), (60, 3), (60, 4)):
        forest = MultiTreeForest.construct(n, d)
        base = arrival_trace(forest, 2 * d)
        live = arrival_trace(forest, 2 * d, ScheduleParams(mode=LIVE_PREBUFFERED))
        shift = {
            live[i][p] - base[i][p] for i in forest.real_nodes for p in range(2 * d)
        }
        assert shift == {d}
        rows.append((n, d, d))
    return rows


def test_playback_ablation(benchmark):
    start_r, cons_r, live_r = benchmark.pedantic(
        lambda: (start_rule_rows(), construction_rows(), live_rows()),
        rounds=1,
        iterations=1,
    )
    text = "\n".join(
        [
            format_table(
                ["N", "d", "paper max", "optimal max", "avg gap", "paper buf",
                 "optimal buf"],
                start_r,
                title="Start-rule ablation — paper rule a(i) vs trace-optimal start",
            ),
            "",
            format_table(
                ["N", "d", "structured max", "structured avg", "greedy max",
                 "greedy avg"],
                cons_r,
                title="Construction ablation — realized delays",
            ),
            "",
            format_table(
                ["N", "d", "extra live delay (slots)"],
                live_r,
                title="Live prebuffer — always exactly d slots",
            ),
        ]
    )
    report("ablation_playback", text)
