"""Run ledger: an append-only JSONL record of every experiment run.

A reproduction's history is part of its evidence.  :class:`RunLedger` keeps
one line of JSON per :func:`repro.run` invocation — what ran (kind, scheme,
sizes, seed), how it ran (cache traffic, executor mode, fallbacks), how long
it took, and when — so "what did we run last week, and has it gotten slower?"
is a ``repro runs`` / ``repro report`` away instead of an archaeology dig.

The same machinery backs the benchmark history
(:func:`append_bench_history`): ``benchmarks/conftest.py`` appends every
bench-timed measurement to ``results/bench_history.jsonl`` with a regression
flag when a benchmark ran slower than its previously recorded wall time by
more than the threshold factor.

Design constraints:

* **append-only** — records are never rewritten; corrupt or foreign lines
  are skipped on read, so a ledger survives interleaved writers and partial
  writes of the final line;
* **versioned** — every record carries ``ledger_version`` and the package
  version that wrote it;
* **self-contained** — records are plain JSON; reading one back needs
  nothing from this package.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Iterable, Iterator

from repro.core.errors import ReproError
from repro.obs.spans import wall_time_s

__all__ = [
    "LEDGER_ENV_VAR",
    "LEDGER_VERSION",
    "RunLedger",
    "append_bench_history",
    "bench_history_records",
    "default_ledger",
    "run_record",
]

LEDGER_VERSION = 1

#: Environment variable naming the default ledger path for ``repro.run``.
LEDGER_ENV_VAR = "REPRO_LEDGER"

#: Wall-time factor over the previous recording that flags a bench regression.
DEFAULT_REGRESSION_THRESHOLD = 1.5


class RunLedger:
    """Append-only JSONL ledger at ``path``.

    The file (and its parent directory) is created on first append.  Reads
    tolerate missing files (empty ledger) and skip lines that are not valid
    JSON objects — a torn final line from a crashed writer never poisons
    the history.
    """

    __slots__ = ("path",)

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)

    def append(self, record: dict[str, Any]) -> dict[str, Any]:
        """Append one record; returns it with the envelope fields added.

        The envelope stamps ``ledger_version``, the package version, and a
        ``time_s`` wall-clock timestamp (unless the record already carries
        one).  Records must be JSON-serializable dicts.
        """
        if not isinstance(record, dict):
            raise ReproError(
                f"ledger records are dicts, got {type(record).__name__}"
            )
        from repro import __version__

        stamped: dict[str, Any] = {
            "ledger_version": LEDGER_VERSION,
            "repro_version": __version__,
            "time_s": record.get("time_s", wall_time_s()),
        }
        stamped.update(record)
        line = json.dumps(stamped, sort_keys=True)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a") as fh:
            fh.write(line + "\n")
        return stamped

    def records(self) -> list[dict[str, Any]]:
        """Every readable record, in append order."""
        return list(self)

    def __iter__(self) -> Iterator[dict[str, Any]]:
        if not self.path.exists():
            return
        with self.path.open() as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn/foreign line: skip, never raise
                if isinstance(record, dict):
                    yield record

    def __len__(self) -> int:
        return sum(1 for _ in self)

    def tail(self, count: int) -> list[dict[str, Any]]:
        """The last ``count`` records (fewer if the ledger is shorter)."""
        if count < 0:
            raise ReproError(f"tail count must be >= 0, got {count}")
        records = self.records()
        return records[len(records) - count:] if count else []


def default_ledger() -> RunLedger | None:
    """The ledger named by ``$REPRO_LEDGER``, or None when unset/empty."""
    path = os.environ.get(LEDGER_ENV_VAR, "").strip()
    return RunLedger(path) if path else None


def _spec_summary(spec: Any) -> dict[str, Any]:
    """The compact, always-JSON-safe slice of an ExperimentSpec."""
    summary: dict[str, Any] = {
        "kind": spec.kind,
        "scheme": spec.scheme,
        "num_nodes": spec.num_nodes,
        "degree": spec.degree,
        "num_packets": spec.num_packets,
        "seed": spec.seed,
    }
    if spec.drop_rate:
        summary["drop_rate"] = spec.drop_rate
    if spec.kind == "sweep":
        summary["grid_points"] = len(spec.grid())
    if spec.kind == "fleet" and spec.fleet is not None:
        fleet = spec.fleet
        summary["fleet_sessions"] = fleet.num_sessions
        summary["aggregation"] = fleet.aggregation
        if fleet.run_until_converged:
            summary["run_until_converged"] = True
        if fleet.controller is not None:
            summary["controlled"] = True
    return summary


def run_record(spec: Any, result: Any) -> dict[str, Any]:
    """One ledger record for a finished ``repro.run`` call.

    Captures the spec summary, row count, wall time, and the provenance
    dict (already JSON-safe: cache outcome, executor info, version).
    """
    return {
        "record": "run",
        "spec": _spec_summary(spec),
        "rows": len(result.rows),
        "timing_s": result.timing_s,
        "provenance": result.provenance,
    }


def append_bench_history(
    path: str | Path,
    name: str,
    wall_clock_s: float,
    *,
    baseline_s: float | None = None,
    threshold: float = DEFAULT_REGRESSION_THRESHOLD,
) -> dict[str, Any]:
    """Append one benchmark timing to the bench history ledger.

    Args:
        path: the JSONL history file (``results/bench_history.jsonl``).
        name: benchmark name (the per-bench result stem).
        wall_clock_s: this run's wall time.
        baseline_s: the previously recorded wall time, when known; a run
            slower than ``threshold * baseline_s`` is flagged
            ``regression: true`` (recorded, never raised — history is
            evidence, not a gate).
        threshold: the slowdown factor that counts as a regression.

    Returns the stamped record.
    """
    if wall_clock_s < 0:
        raise ReproError(f"wall_clock_s must be >= 0, got {wall_clock_s}")
    if threshold <= 1:
        raise ReproError(f"regression threshold must be > 1, got {threshold}")
    record: dict[str, Any] = {
        "record": "bench",
        "name": name,
        "wall_clock_s": wall_clock_s,
    }
    if baseline_s is not None and baseline_s > 0:
        record["baseline_s"] = baseline_s
        record["speedup"] = baseline_s / wall_clock_s if wall_clock_s else float("inf")
        record["regression"] = wall_clock_s > threshold * baseline_s
    return RunLedger(path).append(record)


def bench_history_records(
    path: str | Path, *, name: str | None = None
) -> list[dict[str, Any]]:
    """Bench records from a history ledger, optionally for one benchmark."""
    records: Iterable[dict[str, Any]] = (
        r for r in RunLedger(path) if r.get("record") == "bench"
    )
    if name is not None:
        records = (r for r in records if r.get("name") == name)
    return list(records)
