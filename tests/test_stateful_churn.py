"""Stateful property testing of churn maintenance.

Hypothesis drives arbitrary interleavings of add/delete/compact against a
:class:`~repro.trees.dynamics.DynamicForest` (and, in parallel, a
:class:`~repro.hypercube.dynamics.CascadeMembership`), checking every
structural invariant after every step.  This is the strongest guarantee in
the suite that no churn sequence can corrupt the overlays.
"""

from __future__ import annotations

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)
from hypothesis import strategies as st

from repro.hypercube.dynamics import CascadeMembership
from repro.trees.dynamics import DynamicForest


class MultiTreeChurnMachine(RuleBasedStateMachine):
    """Arbitrary churn against the multi-tree maintenance algorithms."""

    @initialize(
        n=st.integers(2, 25),
        d=st.integers(2, 4),
        lazy=st.booleans(),
        construction=st.sampled_from(["structured", "greedy"]),
    )
    def setup(self, n, d, lazy, construction):
        self.forest = DynamicForest(n, d, construction, lazy=lazy)
        self.max_swaps_per_op = d * d + d

    @rule()
    def add(self):
        _, report = self.forest.add_node()
        assert report.swaps <= self.max_swaps_per_op

    @rule(pick=st.randoms(use_true_random=False))
    @precondition(lambda self: self.forest.num_nodes > 1)
    def delete(self, pick):
        victim = pick.choice(sorted(self.forest.real_ids))
        report = self.forest.delete_node(victim)
        assert victim not in self.forest.real_ids
        assert report.swaps <= 2 * self.max_swaps_per_op

    @rule()
    def compact(self):
        self.forest.compact()

    @invariant()
    def structural_invariants_hold(self):
        if hasattr(self, "forest"):
            self.forest.verify()

    @invariant()
    def population_is_consistent(self):
        if not hasattr(self, "forest"):
            return
        real_in_layouts = {
            node for node in self.forest._layouts[0] if node >= 0
        }
        assert real_in_layouts == self.forest.real_ids

    @invariant()
    def delays_bounded_by_structure(self):
        if not hasattr(self, "forest"):
            return
        from repro.trees.analysis import theorem2_bound

        d = self.forest.degree
        structural_n = self.forest.padded_size
        assert self.forest.worst_case_delay() <= theorem2_bound(structural_n, d)


class CascadeChurnMachine(RuleBasedStateMachine):
    """Arbitrary churn against the hypercube membership strategies."""

    @initialize(
        n=st.integers(2, 40),
        strategy=st.sampled_from(["fill-from-tail", "rebuild"]),
    )
    def setup(self, n, strategy):
        self.membership = CascadeMembership(n, strategy=strategy)

    @rule()
    def join(self):
        node, event = self.membership.join()
        assert node in self.membership.members()
        if self.membership.strategy == "fill-from-tail":
            assert event.relocated == frozenset()

    @rule(pick=st.randoms(use_true_random=False))
    @precondition(lambda self: self.membership.num_nodes > 1)
    def leave(self, pick):
        tail_size = (1 << self.membership.cube_dims[-1]) - 1
        victim = pick.choice(sorted(self.membership.members()))
        event = self.membership.leave(victim)
        assert victim not in self.membership.members()
        if self.membership.strategy == "fill-from-tail":
            # Disruption is confined to the (former) tail cube plus the donor.
            assert len(event.relocated) <= tail_size

    @rule()
    def compact(self):
        self.membership.compact()
        assert self.membership.delay_penalty() == 0

    @invariant()
    def assignments_consistent(self):
        if hasattr(self, "membership"):
            self.membership.verify()

    @invariant()
    def rebuild_stays_optimal(self):
        if hasattr(self, "membership") and self.membership.strategy == "rebuild":
            assert self.membership.delay_penalty() == 0

    @invariant()
    def delays_never_beat_optimal(self):
        if hasattr(self, "membership"):
            assert self.membership.delay_penalty() >= 0


TestMultiTreeChurnMachine = MultiTreeChurnMachine.TestCase
TestMultiTreeChurnMachine.settings = settings(
    max_examples=20, stateful_step_count=25, deadline=None
)

TestCascadeChurnMachine = CascadeChurnMachine.TestCase
TestCascadeChurnMachine.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)
