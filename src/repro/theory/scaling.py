"""Empirical scaling-shape fits for bench assertions.

Table 1's claims are asymptotic (``O(log N)``, ``O(log^2 N)``, ``O(N)``,
``O(1)``).  To check a *measured* series against a claimed shape we fit the
series against a small basis of candidate growth laws by least squares and
compare relative residuals — enough to distinguish constant vs logarithmic vs
poly-log vs linear growth on the population ranges the benches use.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.errors import ReproError

__all__ = ["ScalingFit", "fit_scaling", "best_scaling", "SHAPES"]

#: Candidate growth laws: name -> feature function of N.
SHAPES = {
    "constant": lambda n: 1.0,
    "log": lambda n: math.log2(n),
    "log^2": lambda n: math.log2(n) ** 2,
    "sqrt": lambda n: math.sqrt(n),
    "linear": lambda n: float(n),
}


@dataclass(frozen=True, slots=True)
class ScalingFit:
    """Least-squares fit of ``y ≈ a * shape(N) + b``.

    Attributes:
        shape: the growth-law name.
        slope: fitted ``a``.
        intercept: fitted ``b``.
        relative_rmse: root-mean-square error divided by the mean of ``y``.
    """

    shape: str
    slope: float
    intercept: float
    relative_rmse: float


def fit_scaling(populations, values, shape: str) -> ScalingFit:
    """Fit one candidate growth law to a measured series."""
    if shape not in SHAPES:
        raise ReproError(f"unknown shape {shape!r}; choose from {sorted(SHAPES)}")
    if len(populations) != len(values) or len(populations) < 3:
        raise ReproError("need at least 3 aligned (N, value) points")
    if min(populations) < 2:
        raise ReproError("populations must be >= 2 for log-based shapes")
    feature = SHAPES[shape]
    x = np.array([feature(n) for n in populations], dtype=float)
    y = np.array(values, dtype=float)
    design = np.column_stack([x, np.ones_like(x)])
    (slope, intercept), *_ = np.linalg.lstsq(design, y, rcond=None)
    predicted = design @ np.array([slope, intercept])
    rmse = float(np.sqrt(np.mean((predicted - y) ** 2)))
    mean_y = float(np.mean(np.abs(y))) or 1.0
    return ScalingFit(shape, float(slope), float(intercept), rmse / mean_y)


def best_scaling(populations, values, *, shapes=None) -> ScalingFit:
    """The candidate law with the smallest relative residual.

    Examples:
        >>> import math
        >>> ns = [16, 64, 256, 1024]
        >>> best_scaling(ns, [2 * math.log2(n) for n in ns]).shape
        'log'
        >>> best_scaling(ns, [3.0] * 4).shape
        'constant'


    Degenerate slopes are rejected: a fit whose slope is ~0 collapses to the
    constant law, so non-constant shapes require a meaningfully positive
    slope before they can win.
    """
    candidates = shapes or list(SHAPES)
    fits = []
    y_span = max(values) - min(values)
    if y_span == 0:
        # A flat series is constant by definition; numeric tie-breaking
        # between perfectly-fitting shapes would be arbitrary.
        return fit_scaling(populations, values, "constant")
    for shape in candidates:
        fit = fit_scaling(populations, values, shape)
        if shape != "constant" and y_span > 0:
            x_span = SHAPES[shape](max(populations)) - SHAPES[shape](min(populations))
            if fit.slope * x_span < 0.25 * y_span:
                continue  # explains almost none of the variation
        fits.append(fit)
    if not fits:
        fits = [fit_scaling(populations, values, "constant")]
    return min(fits, key=lambda f: f.relative_rmse)
