"""Integration tests: end-to-end reproduction of the paper's headline claims.

Each test here corresponds to a statement in the paper (abstract, Table 1, or
an inline claim) and verifies it against packet-level simulation under the
strict communication-model validator.
"""

from __future__ import annotations

import pytest

from repro.baselines.chain import ChainProtocol
from repro.core.engine import simulate
from repro.core.metrics import collect_metrics
from repro.hypercube.protocol import GroupedHypercubeProtocol, HypercubeCascadeProtocol
from repro.trees import MultiTreeProtocol
from repro.trees.analysis import theorem2_bound


def metrics_for(protocol, packets):
    trace = simulate(protocol, protocol.slots_for_packets(packets))
    return collect_metrics(trace, num_packets=packets)


class TestAbstractClaims:
    """The abstract's summary sentence, measured."""

    def test_multi_tree_dlogn_delay_and_buffer_2d_neighbors(self):
        n, d = 120, 3
        m = metrics_for(MultiTreeProtocol(n, d), 2 * theorem2_bound(n, d))
        bound = theorem2_bound(n, d)  # d * log_d N shape
        assert m.max_startup_delay <= bound
        assert m.max_buffer <= bound
        assert m.max_neighbors <= 2 * d

    def test_hypercube_log2_delay_constant_buffer_logn_neighbors(self):
        n = 120
        m = metrics_for(HypercubeCascadeProtocol(n), 24)
        assert m.max_buffer <= 2  # O(1)
        k1 = (n + 1).bit_length() - 1
        assert m.max_startup_delay <= (k1 + 1) ** 2  # O(log^2 N)
        assert m.max_neighbors <= 3 * k1  # O(log N)


class TestTable1Tradeoff:
    """Table 1's qualitative comparison, measured on one population."""

    @pytest.fixture(scope="class")
    def measurements(self):
        # A non-special population: the arbitrary-N cascade pays its
        # O(log^2 N) offsets, which is the regime where Table 1 ranks the
        # multi-tree ahead on worst-case delay.
        n, d = 100, 3
        packets = 30
        return {
            "tree": metrics_for(MultiTreeProtocol(n, d), packets),
            "cube": metrics_for(HypercubeCascadeProtocol(n), packets),
            "grouped": metrics_for(GroupedHypercubeProtocol(n, d), packets),
            "chain": metrics_for(ChainProtocol(n), packets),
        }

    def test_multi_tree_beats_arbitrary_n_hypercube_on_delay(self, measurements):
        assert (
            measurements["tree"].max_startup_delay
            <= measurements["cube"].max_startup_delay
        )

    def test_special_n_hypercube_beats_multi_tree_on_delay(self):
        # The other side of Table 1: for N = 2^k - 1 a single cube's
        # O(log N) delay beats the multi-tree's O(d log N).
        n = 127
        tree = metrics_for(MultiTreeProtocol(n, 2), 20)
        cube = metrics_for(HypercubeCascadeProtocol(n), 20)
        assert cube.max_startup_delay < tree.max_startup_delay

    def test_hypercube_beats_multi_tree_on_buffer(self, measurements):
        assert measurements["cube"].max_buffer < measurements["tree"].max_buffer

    def test_multi_tree_has_constant_neighbors(self, measurements):
        assert measurements["tree"].max_neighbors <= 6  # 2d
        assert measurements["cube"].max_neighbors >= 6  # ~log N

    def test_both_beat_chain_on_delay(self, measurements):
        chain = measurements["chain"].max_startup_delay
        assert measurements["tree"].max_startup_delay < chain
        assert measurements["cube"].max_startup_delay < chain

    def test_grouped_variant_beats_single_cascade(self, measurements):
        assert (
            measurements["grouped"].max_startup_delay
            <= measurements["cube"].max_startup_delay
        )


class TestDelayBufferTradeoffCurve:
    def test_buffer_gap_across_populations(self):
        # The tradeoff the title names: the multi-tree scheme pays buffer
        # space (Θ(d log N)) where the hypercube holds O(1) regardless of N.
        for n in (31, 63, 127):
            tree = metrics_for(MultiTreeProtocol(n, 2), 20)
            cube = metrics_for(HypercubeCascadeProtocol(n), 20)
            assert cube.max_buffer <= 2
            assert tree.max_buffer > cube.max_buffer

    def test_multi_tree_buffer_grows_with_population(self):
        buffers = [
            metrics_for(MultiTreeProtocol(n, 2), 24).max_buffer for n in (14, 126, 1022)
        ]
        assert buffers[0] < buffers[-1]


class TestScalingShapes:
    def test_multi_tree_delay_grows_logarithmically(self):
        delays = [
            metrics_for(MultiTreeProtocol(n, 2), 10).max_startup_delay
            for n in (14, 62, 254)
        ]
        # Quadrupling N adds a constant (2 levels * d = 4), not a factor.
        assert delays[1] - delays[0] <= 6
        assert delays[2] - delays[1] <= 6
        assert delays[0] < delays[1] < delays[2]

    def test_chain_delay_grows_linearly(self):
        delays = [
            metrics_for(ChainProtocol(n), 5).max_startup_delay for n in (10, 20, 40)
        ]
        assert delays == [10, 20, 40]
