"""The three feedback controllers and the plane that runs them per epoch.

The control plane closes the loop the ROADMAP sketches between the
observability layer and the fleet service layer.  Once per epoch the
:class:`ControlPlane` receives an :class:`EpochObservation` — the previous
epoch's p99 startup delay read off the streaming aggregation, admission
tallies, and the upcoming epoch's arrival mix and join/leave counts — and
runs three controllers in a fixed, deterministic order:

1. :class:`DegreeOptimizer` — re-evaluates the per-kind tree degree over
   ``d in {2, 3}`` (the paper's Section-5 result: no other degree is ever
   optimal) whenever the admitted mix shifts or the delay signal leaves the
   dead band.  A retune swaps the kind's compiled schedule group-wise: every
   later session of the kind compiles through the shared
   :class:`~repro.exec.cache.ScheduleCache` under the new degree's token.
2. :class:`SLOController` — walks the queue→degrade→reject admission ladder
   from the observed p99, tightening the queue-wait bound first (the
   cheapest threshold move) and escalating the policy stage only when the
   bound is already at its floor.  Hysteresis and cooldown keep it from
   flapping.
3. :class:`ChurnRepairController` — watches the epoch's leave/arrival ratio
   and, past the threshold, runs the paper's appendix add/delete repairs
   (:func:`~repro.trees.live.fleet_repair`) over each multi-tree kind in the
   mix, then invalidates and recompiles exactly the affected schedule
   tokens so the cache never serves a pre-repair schedule.

Every action is a :class:`~repro.control.policy.ControlDecision`; the plane
also emits ``control.*`` counters, ``control.decide`` spans, and
``control_decision`` trace events, and its decision list feeds the run
ledger's decision log (``repro.control.log``).
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Any, Callable, ContextManager, Mapping

from repro.control.policy import ControlDecision, ControlPolicy
from repro.exec.cache import ScheduleCache
from repro.exec.compiler import compile_schedule
from repro.obs.events import CONTROL_DECISION, EventTracer
from repro.obs.names import (
    CONTROL_DECISIONS,
    CONTROL_EPOCHS,
    CONTROL_RECOMPILED_TOKENS,
    CONTROL_REPAIR_SWAPS,
)
from repro.obs.registry import active_registry
from repro.theory import theorem2_bound
from repro.trees.live import fleet_repair

__all__ = [
    "EpochObservation",
    "SLOController",
    "DegreeOptimizer",
    "ChurnRepairController",
    "ControlPlane",
]


@dataclass(frozen=True, slots=True)
class EpochObservation:
    """What the control plane sees at the top of one epoch.

    The delay/admission fields describe the *previous* epoch's executed
    sessions (None/0 at epoch 0 — nothing has run yet); the arrival fields
    describe the epoch about to be admitted.  Everything is derived from
    the resolved fleet and the streaming aggregation, so observations — and
    therefore decisions — are deterministic in ``(FleetSpec, seed)``.

    Attributes:
        epoch: the epoch index decisions made now will apply to.
        p99: previous epoch's p99 session startup delay (queue wait
            included), or None when no session has executed yet.
        cumulative_p99: run-so-far p99 off the aggregator's mergeable
            sketch (the fleet-scale signal; per-epoch p99 is the control
            signal because a cumulative quantile cannot recover once
            contaminated).
        admitted / degraded / rejected: previous epoch's admission tallies.
        arrivals: sessions arriving this epoch.
        joins: arriving sessions (the fleet-scale join rate).
        leaves: arriving sessions that will churn away early.
        mix: ``(kind label, count)`` tallies of this epoch's arrivals.
    """

    epoch: int
    p99: float | None = None
    cumulative_p99: float | None = None
    admitted: int = 0
    degraded: int = 0
    rejected: int = 0
    arrivals: int = 0
    joins: int = 0
    leaves: int = 0
    mix: tuple[tuple[str, int], ...] = ()


class SLOController:
    """Moves the admission ladder from the observed p99 startup delay.

    Escalation (p99 above the dead band) first halves the queue-wait bound
    — queued sessions charge their wait to startup delay, so a tighter
    bound directly caps the tail — and advances the policy stage
    (queue→degrade→reject) once the bound hits its floor.  Relaxation
    (p99 below the band) reverses the walk: back down the ladder first,
    then widen the bound toward its initial value.  ``cooldown_epochs``
    must elapse between actions so every move is observed before the next.
    """

    def __init__(
        self, policy: ControlPolicy, *,
        initial_stage: str, max_queue_slots: int,
    ) -> None:
        self.policy = policy
        ladder = policy.ladder
        self._stage = (
            ladder.index(initial_stage) if initial_stage in ladder else 0
        )
        self._initial_queue_slots = max(max_queue_slots, policy.min_queue_slots)
        self.max_queue_slots = self._initial_queue_slots
        self._cooldown = 0

    @property
    def stage(self) -> str:
        """The admission policy currently in force."""
        return self.policy.ladder[self._stage]

    def decide(self, obs: EpochObservation) -> ControlDecision | None:
        if self._cooldown > 0:
            self._cooldown -= 1
            return None
        if obs.p99 is None:
            return None
        low, high = self.policy.band
        if obs.p99 > high:
            return self._escalate(obs, high)
        if obs.p99 < low:
            return self._relax(obs, low)
        return None

    def _acted(self, decision: ControlDecision) -> ControlDecision:
        self._cooldown = self.policy.cooldown_epochs
        return decision

    def _escalate(self, obs: EpochObservation, high: float) -> ControlDecision | None:
        reason = f"p99 {obs.p99:g} > band high {high:g}"
        if self.max_queue_slots > self.policy.min_queue_slots:
            old = self.max_queue_slots
            self.max_queue_slots = max(
                self.policy.min_queue_slots, old // 2
            )
            return self._acted(ControlDecision(
                epoch=obs.epoch, controller="slo", action="tighten",
                reason=reason, observed_p99=obs.p99,
                target_p99=self.policy.slo_p99_delay,
                detail={"max_queue_slots": [old, self.max_queue_slots]},
            ))
        if self._stage + 1 < len(self.policy.ladder):
            old_stage = self.stage
            self._stage += 1
            return self._acted(ControlDecision(
                epoch=obs.epoch, controller="slo", action="escalate",
                reason=reason, observed_p99=obs.p99,
                target_p99=self.policy.slo_p99_delay,
                detail={"policy": [old_stage, self.stage]},
            ))
        return None  # already at the tightest stage with the bound floored

    def _relax(self, obs: EpochObservation, low: float) -> ControlDecision | None:
        reason = f"p99 {obs.p99:g} < band low {low:g}"
        if self._stage > 0:
            old_stage = self.stage
            self._stage -= 1
            return self._acted(ControlDecision(
                epoch=obs.epoch, controller="slo", action="relax",
                reason=reason, observed_p99=obs.p99,
                target_p99=self.policy.slo_p99_delay,
                detail={"policy": [old_stage, self.stage]},
            ))
        if self.max_queue_slots < self._initial_queue_slots:
            old = self.max_queue_slots
            self.max_queue_slots = min(self._initial_queue_slots, old * 2)
            return self._acted(ControlDecision(
                epoch=obs.epoch, controller="slo", action="widen",
                reason=reason, observed_p99=obs.p99,
                target_p99=self.policy.slo_p99_delay,
                detail={"max_queue_slots": [old, self.max_queue_slots]},
            ))
        return None  # fully relaxed already


class DegreeOptimizer:
    """Re-evaluates each kind's degree over the Section-5 candidate set.

    The paper proves the delay-optimal degree is always 2 or 3 (Section 5);
    at fleet scale a smaller degree is *doubly* cheaper — ``d`` fan-out
    units per session and a shorter compiled horizon — so the optimizer
    picks, per multi-tree kind, the candidate minimizing the Theorem 2
    delay bound ``h(N, d) * d`` with ties broken toward the smaller (=
    cheaper) degree.  It re-evaluates when the mix shifts (a kind first
    appears) or the delay signal leaves the dead band, under the shared
    cooldown.  A retune is applied group-wise: every later arrival of the
    kind resolves its schedule through the cache under the new degree.
    """

    def __init__(self, policy: ControlPolicy, *, min_degree: int = 2) -> None:
        self.policy = policy
        self.min_degree = min_degree
        self.overrides: dict[str, int] = {}
        self._seen: set[str] = set()
        self._cooldown = 0

    def _best_degree(self, num_nodes: int) -> int:
        candidates = [
            d for d in self.policy.degree_candidates if d >= self.min_degree
        ]
        if not candidates:
            candidates = [self.min_degree]
        return min(candidates, key=lambda d: (theorem2_bound(num_nodes, d), d))

    def decide(
        self, obs: EpochObservation, kinds: Mapping[str, Any]
    ) -> ControlDecision | None:
        if not self.policy.reoptimize_degree:
            return None
        if self._cooldown > 0:
            self._cooldown -= 1
            return None
        labels = [label for label, _ in obs.mix]
        mix_shifted = any(label not in self._seen for label in labels)
        self._seen.update(labels)
        low, high = self.policy.band
        under_pressure = obs.p99 is not None and not low <= obs.p99 <= high
        if not (mix_shifted or under_pressure):
            return None
        moves: dict[str, list[int]] = {}
        for label in sorted(set(labels)):
            spec = kinds.get(label)
            if spec is None or spec.scheme != "multi-tree":
                continue
            current = self.overrides.get(label, spec.degree)
            best = self._best_degree(spec.num_nodes)
            if best != current:
                moves[label] = [current, best]
                self.overrides[label] = best
        if not moves:
            return None
        self._cooldown = self.policy.cooldown_epochs
        trigger = "mix shift" if mix_shifted else f"p99 {obs.p99:g} out of band"
        return ControlDecision(
            epoch=obs.epoch, controller="degree", action="retune",
            reason=f"{trigger}; Thm 2 bound prefers "
                   + ", ".join(f"d={new} for {label}" for label, (_, new) in moves.items()),
            observed_p99=obs.p99, target_p99=self.policy.slo_p99_delay,
            detail={"degrees": moves},
        )


class ChurnRepairController:
    """Triggers appendix add/delete repairs when churn crosses the threshold.

    When an epoch's ``leaves / arrivals`` ratio reaches
    ``churn_threshold``, each multi-tree kind in the epoch's mix absorbs
    the epoch's churn through :func:`~repro.trees.live.fleet_repair` —
    eager repair below ``lazy_repair_threshold``, the appendix's lazy
    variant above it (heavier churn amortizes better by deferring tail
    tightening).  The affected kinds' schedule tokens are then invalidated
    and recompiled through the shared cache, so the repair cost lands on
    exactly the tokens the repair touched.
    """

    def __init__(self, policy: ControlPolicy, *, seed: int = 0) -> None:
        self.policy = policy
        self.seed = seed
        self._cooldown = 0

    def decide(
        self,
        obs: EpochObservation,
        kinds: Mapping[str, Any],
        *,
        degrees: Mapping[str, int],
        recompile: Callable[[Any, int], str],
    ) -> ControlDecision | None:
        if self._cooldown > 0:
            self._cooldown -= 1
            return None
        if obs.arrivals == 0:
            return None
        intensity = obs.leaves / obs.arrivals
        if intensity < self.policy.churn_threshold:
            return None
        lazy = intensity >= self.policy.lazy_repair_threshold
        repaired: dict[str, dict[str, Any]] = {}
        tokens: list[str] = []
        for label, _count in obs.mix:
            spec = kinds.get(label)
            if spec is None or spec.scheme != "multi-tree" or label in repaired:
                continue
            degree = degrees.get(label, spec.degree)
            outcome = fleet_repair(
                spec.num_nodes, degree,
                joins=obs.joins, leaves=obs.leaves, lazy=lazy,
                construction=spec.construction,
                seed=self.seed + obs.epoch,
            )
            token = recompile(spec, degree)
            tokens.append(token)
            repaired[label] = {
                "swaps": outcome.swaps,
                "touched": len(outcome.touched),
                "operations": len(outcome.reports),
                "token": token,
            }
        if not repaired:
            return None
        self._cooldown = self.policy.cooldown_epochs
        return ControlDecision(
            epoch=obs.epoch, controller="churn", action="repair",
            reason=(
                f"churn intensity {intensity:.2f} >= "
                f"{self.policy.churn_threshold:g}"
                + (" (lazy)" if lazy else "")
            ),
            observed_p99=obs.p99, target_p99=self.policy.slo_p99_delay,
            detail={
                "intensity": round(intensity, 4),
                "lazy": lazy,
                "kinds": repaired,
                "recompiled_tokens": tokens,
            },
        )


class ControlPlane:
    """Runs the three controllers once per epoch and records their moves.

    Args:
        policy: the :class:`~repro.control.policy.ControlPolicy` setpoints.
        initial_policy: the fleet's configured admission policy (the SLO
            controller's starting ladder stage).
        max_queue_slots: the fleet's configured queue-wait bound (the
            adaptive bound's ceiling).
        min_degree: fleet degrade floor, honored by the degree optimizer.
        cache: the shared schedule cache repairs recompile through.
        seed: fleet seed (repair victim draws).
        spans: optional :class:`~repro.obs.spans.SpanTracer` for
            ``control.decide`` decision spans.
        tracer: optional event tracer receiving one ``control_decision``
            event per action.
    """

    def __init__(
        self,
        policy: ControlPolicy,
        *,
        initial_policy: str = "queue",
        max_queue_slots: int = 64,
        min_degree: int = 2,
        cache: ScheduleCache | None = None,
        seed: int = 0,
        spans: SpanTracer | None = None,
        tracer: EventTracer | None = None,
    ) -> None:
        self.policy = policy
        self.cache = cache if cache is not None else ScheduleCache(capacity=64)
        self.spans = spans
        self.tracer = tracer
        self.slo = SLOController(
            policy, initial_stage=initial_policy, max_queue_slots=max_queue_slots
        )
        self.degree = DegreeOptimizer(policy, min_degree=min_degree)
        self.churn = ChurnRepairController(policy, seed=seed)
        self.decisions: list[ControlDecision] = []
        self.recompiled_tokens: list[str] = []

    # ------------------------------------------------------------ knob state
    @property
    def admission_policy(self) -> str:
        """The ladder stage currently applied to the session manager."""
        return self.slo.stage

    @property
    def max_queue_slots(self) -> int:
        """The queue-wait bound currently applied to the session manager."""
        return self.slo.max_queue_slots

    @property
    def degree_overrides(self) -> dict[str, int]:
        """Per-kind degree retunes currently in force (label -> degree)."""
        return dict(self.degree.overrides)

    # ----------------------------------------------------------------- hooks
    def _span(self, name: str, **attrs: Any) -> ContextManager:
        if self.spans is not None:
            return self.spans.span(name, **attrs)
        return nullcontext()

    def _recompile(self, spec: Any, degree: int) -> str:
        """Invalidate and recompile one kind's schedule token (re-cache)."""
        schedule = compile_schedule(
            spec.scheme, spec.num_nodes, degree,
            num_packets=spec.num_packets,
            construction=spec.construction, mode=spec.mode,
            latency=spec.latency, cache=self.cache,
        )
        if schedule.key is not None:
            self.cache.invalidate(schedule.key)
        provenance: dict[str, Any] = {}
        compile_schedule(
            spec.scheme, spec.num_nodes, degree,
            num_packets=spec.num_packets,
            construction=spec.construction, mode=spec.mode,
            latency=spec.latency, cache=self.cache, provenance=provenance,
        )
        token = str(provenance["cache_token"])
        self.recompiled_tokens.append(token)
        active_registry().counter(CONTROL_RECOMPILED_TOKENS).inc()
        return token

    # ------------------------------------------------------------------- api
    def step(
        self, obs: EpochObservation, kinds: Mapping[str, Any]
    ) -> list[ControlDecision]:
        """Decide this epoch's actions; returns the decisions made.

        ``kinds`` maps kind labels to their :class:`SessionSpec`-shaped
        objects (scheme / num_nodes / degree / num_packets / ...).  The
        controllers run in fixed order — degree, SLO, churn — so the
        decision list is deterministic for a given observation sequence.
        """
        registry = active_registry()
        registry.counter(CONTROL_EPOCHS).inc()
        made: list[ControlDecision] = []
        with self._span("control.decide", epoch=obs.epoch):
            degree_move = self.degree.decide(obs, kinds)
            if degree_move is not None:
                made.append(degree_move)
            slo_move = self.slo.decide(obs)
            if slo_move is not None:
                made.append(slo_move)
            churn_move = self.churn.decide(
                obs, kinds, degrees=self.degree.overrides,
                recompile=self._recompile,
            )
            if churn_move is not None:
                made.append(churn_move)
                repair = churn_move.detail.get("kinds", {})
                swaps = sum(k["swaps"] for k in repair.values())
                if swaps:
                    registry.counter(CONTROL_REPAIR_SWAPS).inc(swaps)
        for decision in made:
            registry.counter(
                CONTROL_DECISIONS,
                controller=decision.controller, action=decision.action,
            ).inc()
            if self.tracer is not None:
                self.tracer.emit(
                    CONTROL_DECISION, obs.epoch,
                    controller=decision.controller, action=decision.action,
                    epoch=decision.epoch,
                )
        self.decisions.extend(made)
        return made
