"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest


@pytest.fixture(scope="session")
def paper_example():
    """The paper's running example: N = 15, d = 3 (Figures 2 and 3)."""
    return {"num_nodes": 15, "degree": 3}
