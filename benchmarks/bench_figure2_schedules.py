"""Figure 2: receiving and sending schedules of node id 6 (N=15, d=3)."""

from __future__ import annotations

from conftest import report

from repro.core.engine import simulate
from repro.core.events import receive_schedule, send_schedule
from repro.trees import MultiTreeProtocol


def run(construction):
    protocol = MultiTreeProtocol(15, 3, construction=construction)
    trace = simulate(protocol, 12)
    return protocol, trace


def _render(construction, trace):
    rx = receive_schedule(trace, 6)
    tx = send_schedule(trace, 6)
    lines = [f"{construction} construction, node id 6:"]
    lines.append("  receives: " + ", ".join(
        f"slot {s}: pkt {p} from {'S' if snd == 0 else snd}" for s, p, snd in rx[:6]
    ))
    lines.append("  sends:    " + ", ".join(
        f"slot {s}: pkt {p} to {r}" for s, p, r in tx[:6]
    ))
    return lines, rx, tx


def test_figure2_reproduction(benchmark):
    (p_s, t_s), (p_g, t_g) = benchmark.pedantic(
        lambda: (run("structured"), run("greedy")), rounds=1, iterations=1
    )
    lines = ["Figure 2 — per-node schedules (node id 6, N=15, d=3)"]
    for name, trace in (("structured", t_s), ("greedy", t_g)):
        rendered, rx, tx = _render(name, trace)
        lines.extend(rendered)
        # Figure 2's invariants: node 6 receives in three distinct residue
        # classes mod 3 (one per tree) and sends at most one packet per slot.
        assert len({s % 3 for s, _, _ in rx[:3]}) == 3
        send_slots = [s for s, _, _ in tx]
        assert len(send_slots) == len(set(send_slots))
    # Structured: node 6's parents are node 1 (T_0), S (T_1), node 11 (T_2).
    senders = {snd for _, _, snd in receive_schedule(t_s, 6)}
    assert senders == {1, 0, 11}
    report("figure2_schedules", "\n".join(lines))
