"""Zero-dependency metrics registry: counters, gauges, histograms with labels.

The registry is the aggregation point of the instrumentation layer
(:mod:`repro.obs`): engine runs, repair coordinators, and sweep workers
increment named instruments; a :meth:`MetricsRegistry.snapshot` is a plain
picklable dict that crosses process boundaries (``workloads/parallel.py``
ships worker snapshots back to the parent) and serializes alongside traces
(``reporting/export.py``).  :meth:`MetricsRegistry.merge` folds a snapshot
back in: counters and histograms add, quantile sketches merge bucket-wise
(:class:`repro.obs.sketch.QuantileSketch`), gauges keep the maximum (the
only order-independent choice when merging concurrent workers).

Instruments are identified by ``(name, labels)``; labels are free-form
string pairs (``registry.counter("sweep.cells", scheme="multi-tree")``).
All mutation goes through one registry-wide lock, so a registry can be
shared between threads.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from contextlib import contextmanager
from typing import Iterator

from .sketch import DEFAULT_RELATIVE_ERROR, QuantileSketch

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Sketch",
    "DEFAULT_BUCKETS",
    "global_registry",
    "active_registry",
    "use_registry",
]

#: Default histogram bucket upper bounds (roughly ×2 spaced; +inf implicit).
DEFAULT_BUCKETS: tuple[float, ...] = (1, 2, 5, 10, 25, 50, 100, 250, 500, 1000)


def _label_key(labels: dict[str, str]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted(labels.items()))


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "labels", "value", "_lock")

    def __init__(self, name: str, labels: dict[str, str], lock: threading.Lock) -> None:
        self.name = name
        self.labels = labels
        self.value = 0
        self._lock = lock

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (inc {amount})")
        with self._lock:
            self.value += amount


class Gauge:
    """Point-in-time value (occupancy, queue depth, last-seen slot)."""

    __slots__ = ("name", "labels", "value", "_lock")

    def __init__(self, name: str, labels: dict[str, str], lock: threading.Lock) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0
        self._lock = lock

    def set(self, value: float) -> None:
        with self._lock:
            self.value = value

    def add(self, delta: float) -> None:
        with self._lock:
            self.value += delta


class Histogram:
    """Distribution summary: bucketed counts plus count/sum/min/max."""

    __slots__ = ("name", "labels", "buckets", "bucket_counts", "count", "sum",
                 "min", "max", "_lock")

    def __init__(
        self,
        name: str,
        labels: dict[str, str],
        lock: threading.Lock,
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> None:
        if list(buckets) != sorted(buckets) or len(set(buckets)) != len(buckets):
            raise ValueError(f"histogram buckets must be strictly increasing, got {buckets}")
        self.name = name
        self.labels = labels
        self.buckets = tuple(buckets)
        self.bucket_counts = [0] * (len(buckets) + 1)  # last = overflow (+inf)
        self.count = 0
        self.sum = 0.0
        self.min: float | None = None
        self.max: float | None = None
        self._lock = lock

    def observe(self, value: float) -> None:
        with self._lock:
            self.bucket_counts[bisect_left(self.buckets, value)] += 1
            self.count += 1
            self.sum += value
            self.min = value if self.min is None else min(self.min, value)
            self.max = value if self.max is None else max(self.max, value)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0


class Sketch:
    """Quantile-sketch instrument: bounded-memory percentile estimates.

    Wraps a :class:`~repro.obs.sketch.QuantileSketch` behind the shared
    registry lock.  Unlike :class:`Histogram`'s fixed buckets, a sketch
    answers arbitrary percentile queries within its documented relative
    error, and snapshots merge exactly (bucket-wise addition).
    """

    __slots__ = ("name", "labels", "sketch", "_lock")

    def __init__(
        self,
        name: str,
        labels: dict[str, str],
        lock: threading.Lock,
        relative_error: float = DEFAULT_RELATIVE_ERROR,
    ) -> None:
        self.name = name
        self.labels = labels
        self.sketch = QuantileSketch(relative_error)
        self._lock = lock

    def observe(self, value: float) -> None:
        with self._lock:
            self.sketch.add(value)

    def add(self, value: float, count: int = 1) -> None:
        with self._lock:
            self.sketch.add(value, count)

    def quantile(self, q: float) -> float:
        with self._lock:
            return self.sketch.quantile(q)

    @property
    def count(self) -> int:
        return self.sketch.count


class MetricsRegistry:
    """Get-or-create home for instruments; snapshot/reset/merge lifecycle."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[tuple, Counter] = {}
        self._gauges: dict[tuple, Gauge] = {}
        self._histograms: dict[tuple, Histogram] = {}
        self._sketches: dict[tuple, Sketch] = {}

    # ------------------------------------------------------------ instruments
    def counter(self, name: str, **labels: str) -> Counter:
        key = (name, _label_key(labels))
        with self._lock:
            inst = self._counters.get(key)
            if inst is None:
                inst = self._counters[key] = Counter(name, labels, self._lock)
        return inst

    def gauge(self, name: str, **labels: str) -> Gauge:
        key = (name, _label_key(labels))
        with self._lock:
            inst = self._gauges.get(key)
            if inst is None:
                inst = self._gauges[key] = Gauge(name, labels, self._lock)
        return inst

    def histogram(
        self, name: str, *, buckets: tuple[float, ...] = DEFAULT_BUCKETS, **labels: str
    ) -> Histogram:
        key = (name, _label_key(labels))
        with self._lock:
            inst = self._histograms.get(key)
            if inst is None:
                inst = self._histograms[key] = Histogram(name, labels, self._lock, buckets)
        return inst

    def sketch(
        self,
        name: str,
        *,
        relative_error: float = DEFAULT_RELATIVE_ERROR,
        **labels: str,
    ) -> Sketch:
        key = (name, _label_key(labels))
        with self._lock:
            inst = self._sketches.get(key)
            if inst is None:
                inst = self._sketches[key] = Sketch(
                    name, labels, self._lock, relative_error
                )
        return inst

    # ------------------------------------------------------------- lifecycle
    def snapshot(self) -> dict:
        """Plain picklable dict of every instrument's current state."""
        with self._lock:
            return {
                "counters": [
                    {"name": c.name, "labels": dict(c.labels), "value": c.value}
                    for c in self._counters.values()
                ],
                "gauges": [
                    {"name": g.name, "labels": dict(g.labels), "value": g.value}
                    for g in self._gauges.values()
                ],
                "histograms": [
                    {
                        "name": h.name,
                        "labels": dict(h.labels),
                        "buckets": list(h.buckets),
                        "bucket_counts": list(h.bucket_counts),
                        "count": h.count,
                        "sum": h.sum,
                        "min": h.min,
                        "max": h.max,
                    }
                    for h in self._histograms.values()
                ],
                "sketches": [
                    {
                        "name": s.name,
                        "labels": dict(s.labels),
                        "sketch": s.sketch.to_dict(),
                    }
                    for s in self._sketches.values()
                ],
            }

    def reset(self) -> None:
        """Drop every instrument (a fresh registry, same identity)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
            self._sketches.clear()

    def merge(self, snapshot: dict) -> None:
        """Fold a :meth:`snapshot` (typically from a worker process) into this
        registry: counters and histograms add, gauges keep the max."""
        for row in snapshot.get("counters", ()):
            self.counter(row["name"], **row["labels"]).inc(row["value"])
        for row in snapshot.get("gauges", ()):
            gauge = self.gauge(row["name"], **row["labels"])
            with self._lock:
                gauge.value = max(gauge.value, row["value"])
        for row in snapshot.get("histograms", ()):
            hist = self.histogram(
                row["name"], buckets=tuple(row["buckets"]), **row["labels"]
            )
            if list(hist.buckets) != list(row["buckets"]):
                raise ValueError(
                    f"histogram {row['name']!r} bucket mismatch: "
                    f"{hist.buckets} vs {row['buckets']}"
                )
            with self._lock:
                for i, n in enumerate(row["bucket_counts"]):
                    hist.bucket_counts[i] += n
                hist.count += row["count"]
                hist.sum += row["sum"]
                for bound, pick in (("min", min), ("max", max)):
                    incoming = row[bound]
                    if incoming is not None:
                        current = getattr(hist, bound)
                        setattr(
                            hist, bound,
                            incoming if current is None else pick(current, incoming),
                        )
        for row in snapshot.get("sketches", ()):
            incoming_sketch = QuantileSketch.from_dict(row["sketch"])
            sketch = self.sketch(
                row["name"],
                relative_error=incoming_sketch.relative_error,
                **row["labels"],
            )
            with self._lock:
                sketch.sketch.merge(incoming_sketch)

    # -------------------------------------------------------------- reporting
    def rows(self) -> list[dict[str, object]]:
        """Flat rows (kind/name/labels/value) for table rendering."""
        snap = self.snapshot()
        rows: list[dict[str, object]] = []
        for row in snap["counters"]:
            rows.append({"kind": "counter", "name": row["name"],
                         "labels": _format_labels(row["labels"]), "value": row["value"]})
        for row in snap["gauges"]:
            rows.append({"kind": "gauge", "name": row["name"],
                         "labels": _format_labels(row["labels"]), "value": row["value"]})
        for row in snap["histograms"]:
            rows.append({
                "kind": "histogram", "name": row["name"],
                "labels": _format_labels(row["labels"]),
                "value": f"count={row['count']} mean="
                         f"{(row['sum'] / row['count']) if row['count'] else 0.0:.3g} "
                         f"min={row['min']} max={row['max']}",
            })
        for row in snap["sketches"]:
            sketch = QuantileSketch.from_dict(row["sketch"])
            if sketch.count:
                summary = (f"count={sketch.count} p50={sketch.quantile(50):.3g} "
                           f"p99={sketch.quantile(99):.3g} max={sketch.max}")
            else:
                summary = "count=0"
            rows.append({
                "kind": "sketch", "name": row["name"],
                "labels": _format_labels(row["labels"]), "value": summary,
            })
        rows.sort(key=lambda r: (str(r["name"]), str(r["labels"])))
        return rows


def _format_labels(labels: dict[str, str]) -> str:
    return ",".join(f"{k}={v}" for k, v in sorted(labels.items()))


_GLOBAL = MetricsRegistry()
_ACTIVE = threading.local()


def global_registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _GLOBAL


def active_registry() -> MetricsRegistry:
    """The registry instrumented code should write to.

    Defaults to :func:`global_registry`; :func:`use_registry` swaps it for the
    current thread (sweep workers isolate per-task snapshots this way).
    """
    return getattr(_ACTIVE, "registry", None) or _GLOBAL


@contextmanager
def use_registry(registry: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Temporarily make ``registry`` the :func:`active_registry`."""
    previous = getattr(_ACTIVE, "registry", None)
    # _ACTIVE is a threading.local: each thread (and each forked worker)
    # sees its own slot, so this swap cannot race across the pool.
    _ACTIVE.registry = registry  # repro-lint: disable=REP005 -- thread-local
    try:
        yield registry
    finally:
        _ACTIVE.registry = previous  # repro-lint: disable=REP005 -- thread-local
