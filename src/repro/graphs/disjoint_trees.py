"""The Two Interior-Disjoint Tree problem on arbitrary graphs (appendix).

The paper's main constructions assume a fully connected cluster; on an
arbitrary graph, deciding whether two spanning trees rooted at ``r`` exist
whose interior nodes are disjoint (the root may be interior in both) is
NP-complete.  This module gives the exact decision procedure used to validate
the reduction on small instances.

Key observation: a spanning tree of ``G`` rooted at ``r`` with interior
vertices contained in ``A`` (where ``r ∈ A``) exists iff

* ``G[A]`` is connected, and
* every vertex outside ``A`` has a neighbor in ``A``.

So two interior-disjoint spanning trees exist iff there are vertex sets
``A_1, A_2`` with ``A_1 ∩ A_2 = {r}``, both connected and dominating.  The
solver enumerates candidate sets by bitmask, which is exact for the small
graphs the reduction tests use.
"""

from __future__ import annotations

import networkx as nx

from repro.core.errors import ConstructionError

__all__ = [
    "interior_nodes",
    "is_interior_set_feasible",
    "spanning_tree_with_interior",
    "find_two_interior_disjoint_trees",
    "has_two_interior_disjoint_trees",
]

_MAX_EXACT = 20


def interior_nodes(tree: nx.Graph, root) -> set:
    """Non-root vertices of degree >= 2 plus the root if it has children.

    Following the paper, the root is allowed to be interior in both trees, so
    callers typically exclude it when intersecting interiors.
    """
    return {v for v in tree.nodes if tree.degree(v) >= 2 and v != root}


def is_interior_set_feasible(graph: nx.Graph, root, candidate: set) -> bool:
    """Can some spanning tree have all its non-root interior vertices in
    ``candidate``?  (See module docstring for the two conditions.)"""
    if root not in graph:
        raise ConstructionError(f"root {root!r} not in graph")
    closure = set(candidate) | {root}
    sub = graph.subgraph(closure)
    if not nx.is_connected(sub):
        return False
    for v in graph.nodes:
        if v in closure:
            continue
        if not any(u in closure for u in graph.neighbors(v)):
            return False
    return True


def spanning_tree_with_interior(graph: nx.Graph, root, candidate: set) -> nx.Graph:
    """Build a spanning tree whose non-root interior vertices lie in ``candidate``.

    BFS inside ``candidate ∪ {root}`` first, then hang every remaining vertex
    off any closure neighbor as a leaf.
    """
    if not is_interior_set_feasible(graph, root, candidate):
        raise ConstructionError(f"interior set {sorted(map(str, candidate))} infeasible")
    closure = set(candidate) | {root}
    tree = nx.Graph()
    tree.add_nodes_from(graph.nodes)
    bfs_edges = nx.bfs_edges(graph.subgraph(closure), root)
    tree.add_edges_from(bfs_edges)
    for v in graph.nodes:
        if v in closure:
            continue
        anchor = next(u for u in graph.neighbors(v) if u in closure)
        tree.add_edge(anchor, v)
    if not nx.is_tree(tree):
        raise ConstructionError("interior-set closure did not yield a tree")
    return tree


def find_two_interior_disjoint_trees(
    graph: nx.Graph, root
) -> tuple[nx.Graph, nx.Graph] | None:
    """Exact search for two interior-disjoint spanning trees rooted at ``root``.

    Returns the trees, or None when no pair exists.  Exponential in the vertex
    count; guarded at ``_MAX_EXACT`` (20) vertices.
    """
    n = graph.number_of_nodes()
    if n > _MAX_EXACT:
        raise ConstructionError(
            f"exact search limited to {_MAX_EXACT} vertices, got {n}"
        )
    if root not in graph:
        raise ConstructionError(f"root {root!r} not in graph")
    if not nx.is_connected(graph):
        return None
    others = [v for v in graph.nodes if v != root]
    feasible: list[frozenset] = []
    for mask in range(1 << len(others)):
        candidate = {others[i] for i in range(len(others)) if mask >> i & 1}
        if is_interior_set_feasible(graph, root, candidate):
            feasible.append(frozenset(candidate))
    # Prefer small sets: if any pair works, a pair of inclusion-minimal
    # feasible sets works, but minimality filtering costs more than it saves
    # at this scale; test disjoint pairs directly.
    feasible.sort(key=len)
    for i, a in enumerate(feasible):
        for b in feasible[i:]:
            if not a & b:
                return (
                    spanning_tree_with_interior(graph, root, set(a)),
                    spanning_tree_with_interior(graph, root, set(b)),
                )
    return None


def has_two_interior_disjoint_trees(graph: nx.Graph, root) -> bool:
    """Decision form of :func:`find_two_interior_disjoint_trees`."""
    return find_two_interior_disjoint_trees(graph, root) is not None
