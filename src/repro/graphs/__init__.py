"""Interior-disjoint trees on arbitrary graphs and the NP-completeness reduction."""

from repro.graphs.disjoint_trees import (
    find_two_interior_disjoint_trees,
    has_two_interior_disjoint_trees,
    interior_nodes,
    is_interior_set_feasible,
    spanning_tree_with_interior,
)
from repro.graphs.heuristic import heuristic_two_interior_disjoint_trees
from repro.graphs.reduction import (
    ROOT,
    element_vertex,
    reduce_to_tree_problem,
    set_vertex,
    split_from_trees,
    trees_from_split,
)
from repro.graphs.set_splitting import (
    SetSplittingInstance,
    random_instance,
    solve_set_splitting,
)

__all__ = [
    "ROOT",
    "SetSplittingInstance",
    "element_vertex",
    "find_two_interior_disjoint_trees",
    "has_two_interior_disjoint_trees",
    "heuristic_two_interior_disjoint_trees",
    "interior_nodes",
    "is_interior_set_feasible",
    "random_instance",
    "reduce_to_tree_problem",
    "set_vertex",
    "solve_set_splitting",
    "spanning_tree_with_interior",
    "split_from_trees",
    "trees_from_split",
]
