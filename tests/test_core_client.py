"""Tests for the online playback client and start policies."""

from __future__ import annotations

import pytest

from repro.core.client import (
    BufferStart,
    FixedStart,
    PlaybackClient,
    WindowStart,
    replay,
)
from repro.core.errors import ReproError
from repro.core.engine import simulate
from repro.trees import MultiTreeProtocol
from repro.trees.analysis import all_playback_delays


class TestPolicies:
    def test_fixed_start(self):
        run = replay({0: 0, 1: 1, 2: 2}, FixedStart(2))
        assert run.start_slot == 2
        assert run.played == (0, 1, 2)
        assert run.hiccups == 0

    def test_fixed_start_too_early_hiccups(self):
        run = replay({0: 5, 1: 6}, FixedStart(0))
        assert run.hiccups > 0
        assert run.played == (0, 1)  # eventually catches up

    def test_window_start_waits_for_prefix(self):
        # Packet 1 arrives late; WindowStart(2) must not start before it.
        run = replay({0: 0, 1: 4, 2: 2, 3: 5}, WindowStart(2))
        assert run.start_slot == 4
        assert run.hiccups == 0

    def test_buffer_start_threshold(self):
        run = replay({0: 0, 1: 1, 2: 2, 3: 3}, BufferStart(2))
        # Two resident packets first happens at slot 1 (0 and 1 in buffer).
        assert run.start_slot == 1
        assert run.played[0] == 0

    def test_buffer_start_can_be_unsafe(self):
        # Buffer fills with *later* packets while packet 0 is still missing:
        # the heuristic starts and hiccups, the window rule would not.
        arrivals = {0: 6, 1: 1, 2: 2, 3: 3, 4: 4}
        heuristic = replay(arrivals, BufferStart(2))
        safe = replay(arrivals, WindowStart(2))
        assert heuristic.hiccups > 0
        assert safe.hiccups == 0

    def test_policy_validation(self):
        with pytest.raises(ReproError):
            FixedStart(-1)
        with pytest.raises(ReproError):
            WindowStart(0)
        with pytest.raises(ReproError):
            BufferStart(0)

    def test_never_started(self):
        run = replay({0: 50}, WindowStart(2), horizon=10)
        assert run.start_slot == -1
        assert run.played == ()


class TestAgainstMultiTree:
    @pytest.fixture(scope="class")
    def traces(self):
        protocol = MultiTreeProtocol(15, 3)
        trace = simulate(protocol, protocol.slots_for_packets(15))
        return protocol, trace

    def test_window_rule_is_hiccup_free_for_every_node(self, traces):
        protocol, trace = traces
        for node in protocol.node_ids:
            arrivals = {p: s for p, s in trace.arrivals(node).items() if p < 15}
            run = replay(arrivals, WindowStart(3))
            assert run.hiccups == 0, f"node {node}"
            assert run.played == tuple(range(15))

    def test_window_rule_matches_paper_delay(self, traces):
        # Observation 2's online rule starts exactly when the paper's a(i)
        # analysis says all first-tree packets have arrived.
        protocol, trace = traces
        expected = all_playback_delays(protocol.forest)
        for node in protocol.node_ids:
            arrivals = {p: s for p, s in trace.arrivals(node).items() if p < 15}
            run = replay(arrivals, WindowStart(3))
            assert run.start_slot == expected[node] - 1  # a(i) counts slots

    def test_client_step_interface(self):
        client = PlaybackClient(FixedStart(1))
        assert client.step(0, [0, 1]) is None  # not started yet
        assert client.step(1, [2]) == 0
        assert client.step(2, []) == 1
        assert client.played == [0, 1]
