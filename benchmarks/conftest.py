"""Benchmark harness support.

Every bench regenerates one of the paper's tables or figures.  Reproduced
output is registered via :func:`report` and (a) written to
``benchmarks/results/<name>.txt`` and (b) echoed into the terminal summary, so
``pytest benchmarks/ --benchmark-only | tee bench_output.txt`` captures the
reproductions alongside the timing table.

Benches that measure their own wall-clock (via :class:`repro.obs.Timer` or a
:class:`repro.obs.PhaseProfiler`) pass ``elapsed=`` / ``phases=`` to
:func:`report`; the harness then also writes ``results/<name>.json`` with the
machine-readable timing row, so the BENCH trajectory keeps a numeric history
alongside the text reproduction.  Benches that do not time themselves still
get a JSON row: the harness times each test's call phase with
:class:`repro.obs.Timer` and backfills ``wall_clock_s`` (scope ``"test"``)
for every report the test registered.

Every timing additionally appends one line to
``results/bench_history.jsonl`` (:func:`repro.reporting.append_bench_history`)
with the previously recorded wall time as the baseline — a run slower than
1.5x its predecessor is flagged ``regression: true`` in the history, and
``repro report`` renders the ledger.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.obs import Timer
from repro.reporting.ledger import append_bench_history

_RESULTS_DIR = Path(__file__).parent / "results"
_HISTORY_PATH = _RESULTS_DIR / "bench_history.jsonl"
_REGISTRY: list[tuple[str, str]] = []
_PENDING_TIMING: list[str] = []


def _previous_wall(name: str) -> float | None:
    """The last recorded wall time for ``name`` (the regression baseline)."""
    path = _RESULTS_DIR / f"{name}.json"
    if not path.exists():
        return None
    try:
        payload = json.loads(path.read_text())
    except (json.JSONDecodeError, OSError):
        return None
    wall = payload.get("wall_clock_s")
    return float(wall) if isinstance(wall, (int, float)) else None


def report(
    name: str,
    text: str,
    *,
    elapsed: float | None = None,
    phases: dict | None = None,
) -> None:
    """Register one reproduced table/figure for the terminal summary.

    Args:
        name: result file stem (``results/<name>.txt`` / ``.json``).
        text: the reproduced table/figure text.
        elapsed: wall-clock seconds for the bench body (``Timer.elapsed``).
        phases: per-phase timing snapshot (``PhaseProfiler.snapshot()``).
    """
    _REGISTRY.append((name, text))
    _RESULTS_DIR.mkdir(exist_ok=True)
    (_RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    if elapsed is not None or phases is not None:
        baseline = _previous_wall(name)
        payload: dict = {"name": name, "timing_scope": "bench"}
        if elapsed is not None:
            payload["wall_clock_s"] = round(elapsed, 6)
        if phases is not None:
            payload["phases"] = phases
        (_RESULTS_DIR / f"{name}.json").write_text(json.dumps(payload, indent=1) + "\n")
        if elapsed is not None:
            append_bench_history(
                _HISTORY_PATH, name, round(elapsed, 6), baseline_s=baseline
            )
    else:
        _PENDING_TIMING.append(name)


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    """Backfill wall-clock timing for reports that did not time themselves."""
    _PENDING_TIMING.clear()
    with Timer() as timer:
        yield
    _RESULTS_DIR.mkdir(exist_ok=True)
    for name in _PENDING_TIMING:
        baseline = _previous_wall(name)
        payload = {
            "name": name,
            "timing_scope": "test",
            "wall_clock_s": round(timer.elapsed, 6),
        }
        (_RESULTS_DIR / f"{name}.json").write_text(json.dumps(payload, indent=1) + "\n")
        append_bench_history(
            _HISTORY_PATH, name, round(timer.elapsed, 6), baseline_s=baseline
        )
    _PENDING_TIMING.clear()


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _REGISTRY:
        return
    terminalreporter.section("paper reproductions")
    for name, text in _REGISTRY:
        terminalreporter.write_line("")
        terminalreporter.write_line(f"=== {name} ===")
        for line in text.splitlines():
            terminalreporter.write_line(line)
