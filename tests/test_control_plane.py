"""Tests for the feedback control plane (repro.control)."""

from __future__ import annotations

import json

import pytest

from repro.control import (
    ControlDecision,
    ControlPlane,
    ControlPolicy,
    EpochObservation,
    SLOController,
    DegreeOptimizer,
    ChurnRepairController,
    control_record,
    decisions_from_record,
)
from repro.core.errors import ReproError
from repro.exec.cache import ScheduleCache
from repro.obs import EventTracer, MetricsRegistry, RingBufferSink
from repro.obs.registry import use_registry
from repro.reporting.ledger import RunLedger
from repro.service.runner import FleetRunner
from repro.service.spec import CapacityModel, FleetSpec, SessionSpec


def _obs(epoch=0, p99=None, **kw):
    return EpochObservation(epoch=epoch, p99=p99, **kw)


class TestControlPolicy:
    def test_defaults_are_valid(self):
        policy = ControlPolicy()
        assert policy.ladder == ("queue", "degrade", "reject")
        assert policy.degree_candidates == (2, 3)

    def test_band_brackets_the_setpoint(self):
        policy = ControlPolicy(slo_p99_delay=20, hysteresis=0.15)
        low, high = policy.band
        assert low == pytest.approx(17.0)
        assert high == pytest.approx(23.0)

    def test_zero_hysteresis_band_collapses(self):
        low, high = ControlPolicy(slo_p99_delay=10, hysteresis=0.0).band
        assert low == high == 10.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(slo_p99_delay=0),
            dict(epoch_sessions=0),
            dict(hysteresis=1.0),
            dict(hysteresis=-0.1),
            dict(cooldown_epochs=-1),
            dict(ladder=()),
            dict(ladder=("queue", "drop")),
            dict(min_queue_slots=0),
            dict(degree_candidates=(1, 2)),
            dict(churn_threshold=0.0),
            dict(lazy_repair_threshold=0.0),
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ReproError):
            ControlPolicy(**kwargs)


class TestControlDecision:
    def test_round_trips_through_json(self):
        decision = ControlDecision(
            epoch=3, controller="slo", action="tighten",
            reason="p99 24 > band high 20.7", observed_p99=24.0,
            target_p99=18, detail={"max_queue_slots": [8, 4]},
        )
        wire = json.loads(json.dumps(decision.to_dict()))
        assert ControlDecision.from_dict(wire) == decision

    def test_none_p99_survives_round_trip(self):
        decision = ControlDecision(
            epoch=0, controller="degree", action="retune", reason="mix shift"
        )
        assert ControlDecision.from_dict(decision.to_dict()).observed_p99 is None

    def test_unknown_controller_rejected(self):
        with pytest.raises(ReproError):
            ControlDecision(epoch=0, controller="pid", action="x", reason="r")

    def test_negative_epoch_rejected(self):
        with pytest.raises(ReproError):
            ControlDecision(epoch=-1, controller="slo", action="x", reason="r")

    def test_row_is_compact(self):
        row = ControlDecision(
            epoch=1, controller="churn", action="repair", reason="r",
            observed_p99=12.0,
        ).row()
        assert row == {
            "epoch": 1, "controller": "churn", "action": "repair",
            "p99": 12.0, "reason": "r",
        }


class TestSLOController:
    def _controller(self, **policy_kw):
        policy_kw.setdefault("slo_p99_delay", 18)
        policy_kw.setdefault("hysteresis", 0.15)
        policy_kw.setdefault("cooldown_epochs", 0)
        policy = ControlPolicy(**policy_kw)
        return SLOController(policy, initial_stage="queue", max_queue_slots=8)

    def test_escalation_walk_tightens_then_advances_ladder(self):
        ctl = self._controller(min_queue_slots=1)
        hot = 30.0  # far above the band
        actions = []
        for epoch in range(7):
            decision = ctl.decide(_obs(epoch=epoch, p99=hot))
            actions.append(None if decision is None else decision.action)
        # 8 -> 4 -> 2 -> 1, then queue -> degrade -> reject, then no move.
        assert actions == [
            "tighten", "tighten", "tighten", "escalate", "escalate", None, None,
        ]
        assert ctl.stage == "reject"
        assert ctl.max_queue_slots == 1

    def test_relaxation_reverses_the_walk(self):
        ctl = self._controller(min_queue_slots=1)
        for epoch in range(5):
            ctl.decide(_obs(epoch=epoch, p99=30.0))
        cold = 5.0  # far below the band
        actions = []
        for epoch in range(5, 11):
            decision = ctl.decide(_obs(epoch=epoch, p99=cold))
            actions.append(None if decision is None else decision.action)
        # reject -> degrade -> queue, then 1 -> 2 -> 4 -> 8, then done.
        assert actions == ["relax", "relax", "widen", "widen", "widen", None]
        assert ctl.stage == "queue"
        assert ctl.max_queue_slots == 8

    def test_in_band_p99_never_acts(self):
        ctl = self._controller()
        low, high = ctl.policy.band
        for p99 in (low, (low + high) / 2, high):
            assert ctl.decide(_obs(p99=p99)) is None

    def test_no_signal_no_action(self):
        ctl = self._controller()
        assert ctl.decide(_obs(p99=None)) is None

    def test_cooldown_gates_consecutive_moves(self):
        ctl = self._controller(cooldown_epochs=2, min_queue_slots=1)
        assert ctl.decide(_obs(epoch=0, p99=30.0)).action == "tighten"
        # Two quiet epochs even though the signal stays hot.
        assert ctl.decide(_obs(epoch=1, p99=30.0)) is None
        assert ctl.decide(_obs(epoch=2, p99=30.0)) is None
        assert ctl.decide(_obs(epoch=3, p99=30.0)).action == "tighten"

    def test_bound_never_drops_below_floor(self):
        ctl = self._controller(min_queue_slots=3)
        ctl.decide(_obs(epoch=0, p99=30.0))
        assert ctl.max_queue_slots == 4
        ctl.decide(_obs(epoch=1, p99=30.0))
        assert ctl.max_queue_slots == 3  # clamped, not 2

    def test_decision_records_the_band_violation(self):
        ctl = self._controller()
        decision = ctl.decide(_obs(epoch=2, p99=30.0))
        assert decision.controller == "slo"
        assert decision.observed_p99 == 30.0
        assert decision.target_p99 == 18
        assert "band high" in decision.reason


class TestDegreeOptimizer:
    def _kinds(self, num_nodes=127, degree=3, scheme="multi-tree"):
        spec = SessionSpec(scheme=scheme, num_nodes=num_nodes, degree=degree)
        return {spec.label: spec}

    def _mix(self, kinds, count=8):
        return tuple((label, count) for label in sorted(kinds))

    def test_retunes_to_theorem2_argmin_on_first_sight(self):
        # N=127: h*d is 14 at d=2 vs 15 at d=3 -> retune to 2.
        policy = ControlPolicy(cooldown_epochs=0)
        opt = DegreeOptimizer(policy)
        kinds = self._kinds(num_nodes=127, degree=3)
        decision = opt.decide(_obs(mix=self._mix(kinds)), kinds)
        assert decision.action == "retune"
        (label,) = kinds
        assert decision.detail["degrees"] == {label: [3, 2]}
        assert opt.overrides == {label: 2}

    def test_already_optimal_kind_is_left_alone(self):
        # N=255: h*d is 16 at d=2 vs 15 at d=3 -> d=3 already optimal.
        opt = DegreeOptimizer(ControlPolicy(cooldown_epochs=0))
        kinds = self._kinds(num_nodes=255, degree=3)
        assert opt.decide(_obs(mix=self._mix(kinds)), kinds) is None
        assert opt.overrides == {}

    def test_seen_mix_in_band_stays_quiet(self):
        opt = DegreeOptimizer(ControlPolicy(cooldown_epochs=0))
        kinds = self._kinds(num_nodes=127)
        assert opt.decide(_obs(epoch=0, mix=self._mix(kinds)), kinds) is not None
        # Same mix, p99 inside the band: no trigger at all.
        assert opt.decide(_obs(epoch=1, p99=18.0, mix=self._mix(kinds)), kinds) is None

    def test_out_of_band_p99_reevaluates_seen_mix(self):
        policy = ControlPolicy(cooldown_epochs=0, degree_candidates=(2, 3))
        opt = DegreeOptimizer(policy)
        kinds = self._kinds(num_nodes=127, degree=3)
        mix = self._mix(kinds)
        opt.decide(_obs(epoch=0, mix=mix), kinds)
        (label,) = kinds
        opt.overrides[label] = 3  # pretend an operator reverted the retune
        decision = opt.decide(_obs(epoch=1, p99=40.0, mix=mix), kinds)
        assert decision is not None
        assert "out of band" in decision.reason

    def test_min_degree_floor_filters_candidates(self):
        opt = DegreeOptimizer(ControlPolicy(cooldown_epochs=0), min_degree=3)
        kinds = self._kinds(num_nodes=127, degree=3)
        # d=2 would win, but the fleet's degrade floor is 3.
        assert opt.decide(_obs(mix=self._mix(kinds)), kinds) is None

    def test_disabled_optimizer_never_acts(self):
        opt = DegreeOptimizer(ControlPolicy(reoptimize_degree=False))
        kinds = self._kinds(num_nodes=127)
        assert opt.decide(_obs(mix=self._mix(kinds)), kinds) is None

    def test_non_multi_tree_kinds_are_skipped(self):
        opt = DegreeOptimizer(ControlPolicy(cooldown_epochs=0))
        kinds = self._kinds(num_nodes=127, scheme="single-tree")
        assert opt.decide(_obs(mix=self._mix(kinds)), kinds) is None


class TestChurnRepairController:
    def _setup(self, **policy_kw):
        policy_kw.setdefault("cooldown_epochs", 0)
        policy_kw.setdefault("churn_threshold", 0.25)
        policy_kw.setdefault("lazy_repair_threshold", 0.5)
        ctl = ChurnRepairController(ControlPolicy(**policy_kw), seed=7)
        spec = SessionSpec(num_nodes=13, degree=3)
        kinds = {spec.label: spec}
        mix = tuple((label, 8) for label in sorted(kinds))
        calls = []

        def recompile(spec, degree):
            calls.append((spec.label, degree))
            return f"token-{degree}"

        return ctl, kinds, mix, calls, recompile

    def test_below_threshold_stays_quiet(self):
        ctl, kinds, mix, calls, recompile = self._setup()
        obs = _obs(arrivals=8, joins=8, leaves=1, mix=mix)  # 0.125 < 0.25
        assert ctl.decide(obs, kinds, degrees={}, recompile=recompile) is None
        assert calls == []

    def test_fires_eager_repair_at_threshold(self):
        ctl, kinds, mix, calls, recompile = self._setup()
        obs = _obs(arrivals=8, joins=8, leaves=3, mix=mix)  # 0.375
        decision = ctl.decide(obs, kinds, degrees={}, recompile=recompile)
        assert decision.action == "repair"
        assert decision.detail["lazy"] is False
        (label,) = kinds
        kind_row = decision.detail["kinds"][label]
        # Every join and leave repaired, plus the trailing eager compact.
        assert kind_row["operations"] == 8 + 3 + 1
        assert kind_row["swaps"] >= 0
        assert decision.detail["recompiled_tokens"] == ["token-3"]
        assert calls == [(label, 3)]

    def test_heavy_churn_goes_lazy(self):
        ctl, kinds, mix, calls, recompile = self._setup()
        obs = _obs(arrivals=8, joins=8, leaves=6, mix=mix)  # 0.75 >= 0.5
        decision = ctl.decide(obs, kinds, degrees={}, recompile=recompile)
        assert decision.detail["lazy"] is True
        assert "(lazy)" in decision.reason

    def test_repairs_at_the_overridden_degree(self):
        ctl, kinds, mix, calls, recompile = self._setup()
        (label,) = kinds
        obs = _obs(arrivals=8, joins=8, leaves=3, mix=mix)
        decision = ctl.decide(
            obs, kinds, degrees={label: 2}, recompile=recompile
        )
        assert calls == [(label, 2)]
        assert decision.detail["kinds"][label]["token"] == "token-2"

    def test_cooldown_after_firing(self):
        ctl, kinds, mix, calls, recompile = self._setup(cooldown_epochs=1)
        hot = _obs(arrivals=8, joins=8, leaves=4, mix=mix)
        assert ctl.decide(hot, kinds, degrees={}, recompile=recompile) is not None
        assert ctl.decide(hot, kinds, degrees={}, recompile=recompile) is None
        assert ctl.decide(hot, kinds, degrees={}, recompile=recompile) is not None

    def test_no_arrivals_no_division(self):
        ctl, kinds, mix, calls, recompile = self._setup()
        obs = _obs(arrivals=0, joins=0, leaves=0, mix=())
        assert ctl.decide(obs, kinds, degrees={}, recompile=recompile) is None


class TestControlPlane:
    def _plane(self, registry, **policy_kw):
        policy_kw.setdefault("cooldown_epochs", 0)
        sink = RingBufferSink()
        plane = ControlPlane(
            ControlPolicy(**policy_kw),
            initial_policy="queue", max_queue_slots=8,
            cache=ScheduleCache(), tracer=EventTracer(sink),
        )
        return plane, sink

    def test_step_runs_degree_then_slo_and_counts(self):
        registry = MetricsRegistry()
        with use_registry(registry):
            plane, sink = self._plane(registry)
            spec = SessionSpec(num_nodes=127, degree=3)
            kinds = {spec.label: spec}
            made = plane.step(
                _obs(epoch=0, p99=40.0, mix=((spec.label, 8),)), kinds
            )
        # Fixed order: the degree retune is decided before the SLO move.
        assert [d.controller for d in made] == ["degree", "slo"]
        assert plane.degree_overrides == {spec.label: 2}
        assert plane.admission_policy == "queue"  # tighten moved the bound
        assert plane.max_queue_slots == 4
        assert plane.decisions == made
        counters = {
            (row["name"], row["labels"]): row["value"]
            for row in registry.rows() if row["kind"] == "counter"
        }
        assert counters[("control.epochs", "")] == 1
        assert counters[
            ("control.decisions", "action=retune,controller=degree")
        ] == 1
        assert counters[
            ("control.decisions", "action=tighten,controller=slo")
        ] == 1
        events = [e for e in sink.events if e.name == "control_decision"]
        assert [e.fields["controller"] for e in events] == ["degree", "slo"]

    def test_recompile_reaches_through_the_cache(self):
        registry = MetricsRegistry()
        with use_registry(registry):
            plane, _ = self._plane(registry, churn_threshold=0.25)
            spec = SessionSpec(num_nodes=13, degree=3, num_packets=4)
            kinds = {spec.label: spec}
            made = plane.step(
                _obs(
                    epoch=0, arrivals=8, joins=8, leaves=4,
                    mix=((spec.label, 8),),
                ),
                kinds,
            )
        repair = [d for d in made if d.controller == "churn"]
        assert len(repair) == 1
        tokens = repair[0].detail["recompiled_tokens"]
        assert tokens == plane.recompiled_tokens
        assert len(tokens) == 1 and tokens[0]
        counters = {
            (row["name"], row["labels"]): row["value"]
            for row in registry.rows() if row["kind"] == "counter"
        }
        assert counters[("control.recompiled_tokens", "")] == 1
        assert counters[("schedule_cache.invalidate", "")] == 1
        assert counters[("control.repair_swaps", "")] >= 1

    def test_quiet_epoch_makes_no_decisions(self):
        registry = MetricsRegistry()
        with use_registry(registry):
            plane, sink = self._plane(registry)
            spec = SessionSpec(num_nodes=255, degree=3)  # already optimal
            made = plane.step(
                _obs(epoch=0, p99=18.0, mix=((spec.label, 8),)),
                {spec.label: spec},
            )
        assert made == []
        assert plane.decisions == []


class TestDecisionLog:
    def _decisions(self):
        return [
            ControlDecision(
                epoch=0, controller="degree", action="retune",
                reason="mix shift", detail={"degrees": {"k": [3, 2]}},
            ),
            ControlDecision(
                epoch=2, controller="slo", action="tighten",
                reason="p99 24 > band high 20.7", observed_p99=24.0,
                target_p99=18, detail={"max_queue_slots": [8, 4]},
            ),
        ]

    def test_record_round_trips(self):
        decisions = self._decisions()
        record = control_record(
            decisions,
            epochs=[{"epoch": 0, "observed_p99": None}],
            policy={"slo_p99_delay": 18},
        )
        assert record["record"] == "control"
        assert record["policy"] == {"slo_p99_delay": 18}
        assert decisions_from_record(record) == decisions

    def test_round_trips_through_the_ledger_file(self, tmp_path):
        decisions = self._decisions()
        ledger = RunLedger(tmp_path / "ledger.jsonl")
        ledger.append(control_record(decisions))
        records = [
            r for r in ledger.records() if r.get("record") == "control"
        ]
        assert len(records) == 1
        assert decisions_from_record(records[0]) == decisions

    def test_rejects_non_control_records(self):
        with pytest.raises(ReproError):
            decisions_from_record({"record": "run"})
        with pytest.raises(ReproError):
            decisions_from_record({"record": "control", "decisions": "oops"})


class TestFleetSpecController:
    def _fleet(self, **kw):
        return FleetSpec(
            sessions=(SessionSpec(num_nodes=13, degree=3),),
            num_sessions=8, arrival="uniform", arrival_rate=0.5, horizon=20,
            **kw,
        )

    def test_accepts_a_control_policy(self):
        fleet = self._fleet(controller=ControlPolicy())
        assert fleet.controller is not None

    def test_rejects_non_policy_objects(self):
        with pytest.raises(ReproError, match="controller"):
            self._fleet(controller=object())

    def test_controller_excludes_convergence_mode(self):
        with pytest.raises(ReproError, match="epoch loop"):
            self._fleet(controller=ControlPolicy(), run_until_converged=True)


class TestControlledRunner:
    def _fleet(self, *, seed=0):
        return FleetSpec(
            sessions=(SessionSpec(num_nodes=127, degree=3, num_packets=8),),
            num_sessions=40, arrival="trace",
            arrival_slots=tuple(range(0, 80, 2)),
            seed=seed,
            capacity=CapacityModel(source_fanout=48.0, backbone=1e9),
            policy="queue", max_queue_slots=32, min_degree=2,
            aggregation="exact",
            controller=ControlPolicy(
                slo_p99_delay=18, epoch_sessions=16, cooldown_epochs=1,
            ),
        )

    def test_controlled_run_surfaces_decisions_and_epochs(self):
        result = FleetRunner().run(self._fleet())
        # The degree optimizer fires on the first epoch's mix.
        assert any(d.action == "retune" for d in result.control_decisions)
        assert len(result.control_epochs) >= 3  # ceil(40/16) epochs
        first = result.control_epochs[0]
        assert first["epoch"] == 0
        assert first["observed_p99"] is None  # nothing ran yet
        for row in result.control_epochs:
            assert {
                "epoch", "arrivals", "observed_p99", "policy",
                "max_queue_slots", "admitted", "degraded", "rejected",
                "queued", "decisions",
            } <= set(row)
        # Epoch decision tallies agree with the flat decision list.
        assert sum(r["decisions"] for r in result.control_epochs) == len(
            result.control_decisions
        )
        # Every offered session got exactly one terminal decision.
        assert len(result.decisions) == 40

    def test_static_run_has_empty_control_fields(self):
        fleet = self._fleet()
        static = FleetSpec(
            **{
                **{f: getattr(fleet, f) for f in fleet.__dataclass_fields__},
                "controller": None,
            }
        )
        result = FleetRunner().run(static)
        assert result.control_decisions == ()
        assert result.control_epochs == ()

    def test_decisions_deterministic_in_spec_and_seed(self):
        first = FleetRunner().run(self._fleet(seed=3))
        second = FleetRunner().run(self._fleet(seed=3))
        assert [d.to_dict() for d in first.control_decisions] == [
            d.to_dict() for d in second.control_decisions
        ]
        assert first.control_epochs == second.control_epochs
        assert first.report.startup_p99 == second.report.startup_p99

    def test_experiment_artifacts_carry_the_decision_log(self):
        from repro.exec.executor import ExecutorPolicy
        from repro.experiments import ExperimentSpec, run
        from repro.reporting.ledger import run_record

        spec = ExperimentSpec(
            kind="fleet", fleet=self._fleet(),
            executor=ExecutorPolicy(mode="serial"),
        )
        result = run(spec)
        artifacts = result.artifacts
        assert "shard_timings" in artifacts
        assert artifacts["control_decisions"]  # JSON-safe decision rows
        for row in artifacts["control_decisions"]:
            ControlDecision.from_dict(row)
        assert artifacts["epochs"]
        assert artifacts["rejected_sessions"] == tuple(
            d.session_id
            for d in artifacts["decisions"] if d.status == "rejected"
        )
        # The ledger record marks the run as controlled.
        assert run_record(spec, result)["spec"]["controlled"] is True

    def test_static_experiment_has_no_control_artifacts(self):
        from repro.exec.executor import ExecutorPolicy
        from repro.experiments import ExperimentSpec, run
        from repro.reporting.ledger import run_record

        fleet = FleetSpec(
            sessions=(SessionSpec(num_nodes=13, degree=3, num_packets=4),),
            num_sessions=6,
        )
        spec = ExperimentSpec(
            kind="fleet", fleet=fleet, executor=ExecutorPolicy(mode="serial")
        )
        result = run(spec)
        assert "control_decisions" not in result.artifacts
        assert "epochs" not in result.artifacts
        assert result.artifacts["rejected_sessions"] == ()
        assert "controlled" not in run_record(spec, result)["spec"]

    def test_replay_from_ledger_record_matches_rerun(self, tmp_path):
        result = FleetRunner().run(self._fleet(seed=5))
        ledger = RunLedger(tmp_path / "ledger.jsonl")
        ledger.append(control_record(
            result.control_decisions, epochs=result.control_epochs,
        ))
        (record,) = list(ledger.records())
        replayed = decisions_from_record(record)
        rerun = FleetRunner().run(self._fleet(seed=5))
        assert replayed == list(rerun.control_decisions)
