"""ABR scenario subsystem: time-varying capacity, bitrate ladders, QoE tiers.

The paper's model fixes every link at unit capacity; this subsystem studies
what its delay/buffer tradeoff means when bandwidth varies — the regime of
the throughput-smoothness literature (Joshi, Kochman & Wornell; see
PAPERS.md).  Four layers:

* :mod:`repro.abr.traces` — per-link time-varying capacity as
  :class:`CapacityTrace` objects: synthetic generators (constant, step,
  sinusoid, Gilbert-Elliott on/off), a loader for external trace files, and
  the named :data:`TRACE_PROFILES` registry the CLI/fleet layers draw from;
* :mod:`repro.abr.ladder` — the bitrate ladder and the buffer-aware
  bandwidth estimator that chooses rungs per chunk;
* :mod:`repro.abr.session` — the slot-synchronous adaptive-bitrate session
  model (download vs playback race, prebuffer startup, panic downshift);
* :mod:`repro.abr.qoe` — QoE accounting (rebuffer time/events, played
  bitrate, bitrate-change smoothness) and the tier bucketing the tradeoff
  curves report per;
* :mod:`repro.abr.capacity` — the engine attachment: build a
  ``capacity_hook`` (the bandwidth analogue of ``repair_hook``) that
  throttles per-link transmissions of a :class:`~repro.core.engine.SimConfig`
  run to a trace;
* :mod:`repro.abr.sweep` — the delay/buffer tradeoff sweep over trace
  profiles × prebuffer targets, bucketed by QoE tier (``repro abr``,
  ``ExperimentSpec(kind="abr")``, ``bench_abr_tradeoff.py``).
"""

from repro.abr.capacity import trace_capacity_hook
from repro.abr.ladder import (
    DEFAULT_LADDER,
    BandwidthEstimator,
    BitrateLadder,
    EstimatorConfig,
)
from repro.abr.qoe import QOE_TIERS, QoEMetrics, classify_tier, collect_qoe, qoe_from_slot_log
from repro.abr.session import AbrSessionResult, AbrSessionSpec, ChunkRecord, run_session
from repro.abr.sweep import (
    DEFAULT_PROFILES,
    DEFAULT_STARTUP_GRID,
    AbrPoint,
    AbrTradeoffReport,
    abr_tradeoff,
)
from repro.abr.traces import (
    TRACE_PROFILES,
    CapacityTrace,
    build_profile,
    constant_trace,
    load_capacity_trace,
    on_off_trace,
    sinusoid_trace,
    step_trace,
)

__all__ = [
    "DEFAULT_LADDER",
    "DEFAULT_PROFILES",
    "DEFAULT_STARTUP_GRID",
    "QOE_TIERS",
    "TRACE_PROFILES",
    "AbrPoint",
    "AbrSessionResult",
    "AbrSessionSpec",
    "AbrTradeoffReport",
    "BandwidthEstimator",
    "BitrateLadder",
    "CapacityTrace",
    "ChunkRecord",
    "EstimatorConfig",
    "QoEMetrics",
    "abr_tradeoff",
    "build_profile",
    "classify_tier",
    "collect_qoe",
    "constant_trace",
    "load_capacity_trace",
    "on_off_trace",
    "qoe_from_slot_log",
    "run_session",
    "sinusoid_trace",
    "step_trace",
    "trace_capacity_hook",
]
