"""Tests for the ABR session loop, ladder, estimator, and QoE replay check."""

from __future__ import annotations

import pytest

from repro.abr import (
    DEFAULT_LADDER,
    AbrSessionSpec,
    BandwidthEstimator,
    BitrateLadder,
    EstimatorConfig,
    collect_qoe,
    qoe_from_slot_log,
    run_session,
)
from repro.abr.session import SLOT_PLAY, SLOT_REBUFFER, SLOT_STARTUP
from repro.abr.traces import build_profile, constant_trace, step_trace
from repro.core.errors import ReproError


class TestLadder:
    def test_rung_for_picks_highest_affordable(self):
        assert DEFAULT_LADDER.rung_for(10.0, safety=0.9) == 8.0
        assert DEFAULT_LADDER.rung_for(4.0, safety=0.9) == 2.0
        assert DEFAULT_LADDER.rung_for(0.0, safety=0.9) == 1.0  # floor

    def test_index_of(self):
        assert DEFAULT_LADDER.index_of(4.0) == 2
        with pytest.raises(ReproError):
            DEFAULT_LADDER.index_of(3.0)

    def test_validation(self):
        with pytest.raises(ReproError):
            BitrateLadder(rungs=())
        with pytest.raises(ReproError):
            BitrateLadder(rungs=(2.0, 1.0))
        with pytest.raises(ReproError):
            BitrateLadder(rungs=(1.0, 1.0))
        with pytest.raises(ReproError):
            BitrateLadder(rungs=(0.0, 1.0))
        with pytest.raises(ReproError):
            DEFAULT_LADDER.rung_for(1.0, safety=0.0)


class TestEstimator:
    def test_cold_start_is_zero(self):
        est = BandwidthEstimator()
        assert est.estimate(10) == 0.0

    def test_single_sample(self):
        est = BandwidthEstimator()
        est.observe(4.0)
        assert est.estimate(100) == pytest.approx(4.0)

    def test_window_min_floors_low_buffer_estimate(self):
        est = BandwidthEstimator(config=EstimatorConfig(window=3, risk_buffer_slots=8))
        for s in (8.0, 8.0, 1.0):
            est.observe(s)
        # At an empty buffer risk=0: estimate collapses to the window minimum.
        assert est.estimate(0) == pytest.approx(1.0)
        # At a healthy buffer the EWMA dominates.
        assert est.estimate(100) > 4.0

    def test_reset(self):
        est = BandwidthEstimator()
        est.observe(2.0)
        est.reset()
        assert est.estimate(5) == 0.0

    def test_negative_sample_rejected(self):
        with pytest.raises(ReproError):
            BandwidthEstimator().observe(-1.0)


class TestSessionSpec:
    def test_validation(self):
        with pytest.raises(ReproError):
            AbrSessionSpec(num_chunks=0)
        with pytest.raises(ReproError):
            AbrSessionSpec(num_chunks=4, chunk_slots=0)
        with pytest.raises(ReproError):
            AbrSessionSpec(num_chunks=4, startup_chunks=0)
        with pytest.raises(ReproError):
            AbrSessionSpec(num_chunks=4, safety=1.5)
        with pytest.raises(ReproError):
            AbrSessionSpec(num_chunks=4, max_buffer_chunks=0)

    def test_startup_target_clamped(self):
        assert AbrSessionSpec(num_chunks=2, startup_chunks=8).startup_target == 2


class TestRunSession:
    def test_steady_link_plays_everything(self):
        spec = AbrSessionSpec(num_chunks=8, chunk_slots=4, startup_chunks=2)
        result = run_session(spec, constant_trace(8.0, 64))
        assert result.slot_log.count(SLOT_PLAY) == 8 * 4
        assert SLOT_REBUFFER not in result.slot_log
        assert result.startup_slots == result.slot_log.count(SLOT_STARTUP)
        assert len(result.chunks) == 8
        assert [c.index for c in result.chunks] == list(range(8))

    def test_deterministic(self):
        spec = AbrSessionSpec(num_chunks=12, chunk_slots=3)
        trace = build_profile("onoff", 64, seed=5)
        a = run_session(spec, trace)
        b = run_session(spec, trace)
        assert a == b

    def test_higher_prebuffer_costs_more_delay(self):
        trace = constant_trace(4.0, 64)
        small = run_session(AbrSessionSpec(num_chunks=8, startup_chunks=1), trace)
        large = run_session(AbrSessionSpec(num_chunks=8, startup_chunks=4), trace)
        assert large.startup_slots > small.startup_slots

    def test_buffer_cap_respected_outside_panic(self):
        spec = AbrSessionSpec(num_chunks=16, chunk_slots=4, startup_chunks=2,
                              max_buffer_chunks=3)
        result = run_session(spec, constant_trace(16.0, 64))
        # Peak buffered media can't exceed the cap plus the chunk in play and
        # one chunk completing in the same slot.
        assert result.max_buffer_slots <= (3 + 2) * spec.chunk_slots

    def test_starving_trace_hits_ceiling(self):
        spec = AbrSessionSpec(num_chunks=4, chunk_slots=2, max_slots=50)
        trace = constant_trace(0.001, 16)
        with pytest.raises(ReproError, match="exceeded 50 slots"):
            run_session(spec, trace)

    def test_panic_abandons_optimistic_fetch(self):
        # High capacity while prebuffering, then a long dry stretch: the
        # session must fall back to the lowest rung and record abandonments.
        trace = step_trace(8.0, 1.0, 32, 64, duty=0.25)
        spec = AbrSessionSpec(num_chunks=10, chunk_slots=4, startup_chunks=1,
                              max_buffer_chunks=2)
        result = run_session(spec, trace)
        assert SLOT_REBUFFER not in result.slot_log  # min capacity covers rung 1
        rates = {c.rate for c in result.chunks}
        assert 1.0 in rates  # panic fetches happened


class TestQoEReplay:
    """Acceptance criterion: QoE validated slot-for-slot against a replay."""

    @pytest.mark.parametrize("profile", ["steady", "step", "sinusoid", "onoff"])
    @pytest.mark.parametrize("startup", [1, 4])
    def test_collect_qoe_matches_independent_replay(self, profile, startup):
        spec = AbrSessionSpec(num_chunks=16, chunk_slots=4,
                              startup_chunks=startup,
                              max_buffer_chunks=startup + 1)
        trace = build_profile(profile, 64, seed=2)
        result = run_session(spec, trace)
        qoe = collect_qoe(result)
        # Re-derive QoE from the raw slot logs alone, slot for slot.
        replay = qoe_from_slot_log(list(result.slot_log), list(result.slot_rates))
        assert replay == qoe
        assert qoe.session_slots == result.session_slots
        assert qoe.startup_slots == result.startup_slots
