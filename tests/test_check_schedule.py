"""Adversarial tests for the schedule model checker (repro.check).

Strategy: compile a real schedule, then corrupt it *surgically* — one
semantic defect per fixture — and assert the checker reports exactly the
violation class that defect belongs to, and nothing else.  The chain
baseline is the corruption target of choice: its timetable is simple enough
to reason about exactly (node ``i`` receives packet ``p`` at slot
``p + i - 1`` and forwards it one slot later).
"""

from array import array

import pytest

from repro.baselines import ChainProtocol
from repro.check import (
    RULES,
    CheckReport,
    Violation,
    check_config,
    check_schedule,
    smoke_grid,
)
from repro.core.errors import ReproError, ScheduleError
from repro.exec import ScheduleCache, compile_protocol, compile_schedule
from repro.exec.compiler import CompiledSchedule
from repro.obs import MetricsRegistry, use_registry

N = 6  # chain length for the corruption fixtures
P = 4  # measured packet prefix


# --------------------------------------------------------------------- helpers
def flat_transmissions(schedule):
    """``[(slot, sender, receiver, packet, arrival), ...]`` in flat order."""
    out = []
    for slot in range(schedule.num_slots):
        for i in range(schedule.starts[slot], schedule.starts[slot + 1]):
            out.append(
                (
                    slot,
                    schedule.senders[i],
                    schedule.receivers[i],
                    schedule.packets[i],
                    schedule.arrivals[i],
                )
            )
    return out


def rebuild(schedule, txs):
    """A keyless CompiledSchedule carrying exactly ``txs`` (latency 1)."""
    num_slots = schedule.num_slots
    starts = array("i", [0])
    senders = array("i")
    receivers = array("i")
    packets = array("i")
    arrivals = array("i")
    latencies = array("i")
    trees = array("i")
    ordered = sorted(txs, key=lambda t: t[0])
    index = 0
    for slot in range(num_slots):
        while index < len(ordered) and ordered[index][0] == slot:
            _, sender, receiver, packet, arrival = ordered[index]
            senders.append(sender)
            receivers.append(receiver)
            packets.append(packet)
            arrivals.append(arrival)
            latencies.append(1)
            trees.append(-1)
            index += 1
        starts.append(len(senders))
    if index != len(ordered):
        raise AssertionError("corrupted transmission outside the horizon")
    return CompiledSchedule(
        key=None,
        num_slots=num_slots,
        node_ids=schedule.node_ids,
        source_ids=schedule.source_ids,
        starts=starts,
        senders=senders,
        receivers=receivers,
        packets=packets,
        arrivals=arrivals,
        latencies=latencies,
        trees=trees,
    )


def find_tx(txs, **want):
    """The unique transmission matching the given field values."""
    fields = ("slot", "sender", "receiver", "packet", "arrival")
    matches = [
        tx
        for tx in txs
        if all(tx[fields.index(k)] == v for k, v in want.items())
    ]
    assert len(matches) == 1, (want, matches)
    return matches[0]


@pytest.fixture(scope="module")
def chain():
    protocol = ChainProtocol(N)
    schedule = compile_protocol(protocol, protocol.slots_for_packets(P))
    return protocol, schedule


def recheck(protocol, schedule, txs):
    return check_schedule(rebuild(schedule, txs), protocol=protocol, num_packets=P)


# ---------------------------------------------------------------- clean passes
class TestCleanSchedules:
    def test_chain_is_certified(self, chain):
        protocol, schedule = chain
        report = check_schedule(schedule, protocol=protocol, num_packets=P)
        assert report.ok
        assert report.counts == {}
        assert report.violations == ()
        assert "OK" in report.summary()

    def test_check_config_multi_tree(self):
        report = check_config(
            "multi-tree", 15, 3, num_packets=8, cache=ScheduleCache(disk=False)
        )
        assert report.ok, report.summary()

    def test_smoke_grid_small_is_clean(self):
        reports = smoke_grid(
            nodes=(7, 15),
            degrees=(2, 3),
            num_packets=8,
            cache=ScheduleCache(disk=False),
        )
        assert reports and all(r.ok for r in reports), [
            r.summary() for r in reports if not r.ok
        ]
        # hypercube/chain are degree-insensitive: one report per population.
        descriptions = [r.description for r in reports]
        assert len(descriptions) == len(set(descriptions))


# ------------------------------------------------------- corruption fixtures
class TestCorruptions:
    """Each corruption must trigger exactly its own violation class."""

    def test_dropped_transmission_is_coverage(self, chain):
        # Drop the delivery of packet 2 to the chain tail (node N).  The tail
        # forwards nothing, so the only consequence is the coverage gap.
        protocol, schedule = chain
        txs = flat_transmissions(schedule)
        txs.remove(find_tx(txs, receiver=N, packet=2))
        report = recheck(protocol, schedule, txs)
        assert set(report.counts) == {"coverage"}
        (violation,) = report.violations
        assert violation.node == N
        assert violation.packet == 2

    def test_duplicate_receive_is_duplicate_delivery(self, chain):
        # Rewrite the tail's packet-5 delivery to re-deliver packet 2 (already
        # held): one wasted receive slot, every other invariant untouched
        # (packet 5 is outside the measured prefix P=4).
        protocol, schedule = chain
        txs = flat_transmissions(schedule)
        slot, sender, receiver, _, arrival = find_tx(txs, receiver=N, packet=5)
        txs.remove((slot, sender, receiver, 5, arrival))
        txs.append((slot, sender, receiver, 2, arrival))
        report = recheck(protocol, schedule, txs)
        assert set(report.counts) == {"duplicate-delivery"}
        (violation,) = report.violations
        assert (violation.node, violation.packet) == (N, 2)

    def test_source_overflow_is_send_capacity(self, chain):
        # Reassign a mid-chain forward to the source: the source now emits two
        # packets in one slot against its capacity of 1 (Section 2's model).
        protocol, schedule = chain
        txs = flat_transmissions(schedule)
        slot, _, receiver, packet, arrival = find_tx(
            txs, sender=N - 1, receiver=N, packet=3
        )
        txs.remove((slot, N - 1, receiver, packet, arrival))
        txs.append((slot, 0, receiver, packet, arrival))
        report = recheck(protocol, schedule, txs)
        assert set(report.counts) == {"send-capacity"}
        (violation,) = report.violations
        assert violation.node == 0
        assert violation.slot == slot

    def test_relay_overflow_is_send_capacity(self, chain):
        # Same defect on a relay: node 1 (capacity 1) absorbs node 3's forward
        # of a packet node 1 has long held, so only send-capacity can fire.
        protocol, schedule = chain
        txs = flat_transmissions(schedule)
        slot, _, receiver, packet, arrival = find_tx(txs, sender=3, packet=3)
        txs.remove((slot, 3, receiver, packet, arrival))
        txs.append((slot, 1, receiver, packet, arrival))
        report = recheck(protocol, schedule, txs)
        assert set(report.counts) == {"send-capacity"}
        (violation,) = report.violations
        assert violation.node == 1

    def test_send_before_hold_is_causality(self, chain):
        # Reassign the tail's packet-3 delivery to be sent by the tail itself:
        # the tail only *receives* packet 3 at that very slot, so it forwards
        # a packet it does not yet hold.
        protocol, schedule = chain
        txs = flat_transmissions(schedule)
        slot, _, receiver, packet, arrival = find_tx(txs, receiver=N, packet=3)
        txs.remove((slot, N - 1, receiver, packet, arrival))
        txs.append((slot, N, receiver, packet, arrival))
        report = recheck(protocol, schedule, txs)
        assert set(report.counts) == {"causality"}
        (violation,) = report.violations
        assert (violation.node, violation.packet) == (N, 3)

    def test_colliding_arrivals_are_recv_capacity(self, chain):
        # Stretch the latency of the tail's packet-0 delivery (same sender and
        # sending slot, arrival one slot later): it now lands in the same slot
        # as packet 1 — two receives against capacity 1, nothing else moves.
        protocol, schedule = chain
        txs = flat_transmissions(schedule)
        slot, sender, receiver, packet, arrival = find_tx(txs, receiver=N, packet=0)
        txs.remove((slot, sender, receiver, packet, arrival))
        txs.append((slot, sender, receiver, 0, arrival + 1))
        report = recheck(protocol, schedule, txs)
        assert set(report.counts) == {"recv-capacity"}
        (violation,) = report.violations
        assert violation.node == N
        assert violation.slot == arrival + 1

    def test_unknown_node_is_well_formed(self, chain):
        protocol, schedule = chain
        txs = flat_transmissions(schedule)
        slot, sender, receiver, packet, arrival = find_tx(txs, receiver=N, packet=5)
        txs.remove((slot, sender, receiver, packet, arrival))
        txs.append((slot, sender, N + 99, packet, arrival))
        report = recheck(protocol, schedule, txs)
        assert "well-formed" in report.counts

    def test_truncation_keeps_exact_counts(self, chain):
        # Drop every delivery to the tail: one coverage violation per missing
        # prefix packet; max_per_rule truncates kept records, not totals.
        protocol, schedule = chain
        txs = [tx for tx in flat_transmissions(schedule) if tx[2] != N]
        report = check_schedule(
            rebuild(schedule, txs), protocol=protocol, num_packets=P, max_per_rule=1
        )
        assert report.counts["coverage"] == 1  # one finding per node, node N only
        kept = [v for v in report.violations if v.rule == "coverage"]
        assert len(kept) == 1


# ----------------------------------------------------------------- API details
class TestReportAndWiring:
    def test_violation_rules_are_catalogued(self, chain):
        protocol, schedule = chain
        txs = flat_transmissions(schedule)
        txs.remove(find_tx(txs, receiver=N, packet=2))
        report = recheck(protocol, schedule, txs)
        for violation in report.violations:
            assert violation.rule in RULES
            assert str(violation)
            assert violation.to_dict()["rule"] == violation.rule

    def test_report_to_dict_roundtrips(self, chain):
        protocol, schedule = chain
        report = check_schedule(schedule, protocol=protocol, num_packets=P)
        payload = report.to_dict()
        assert payload["ok"] is True
        assert payload["num_packets"] == P
        assert payload["violations"] == []

    def test_keyless_schedule_requires_protocol(self, chain):
        _, schedule = chain
        with pytest.raises(ReproError):
            check_schedule(rebuild(schedule, flat_transmissions(schedule)))

    def test_violations_counter_lands_on_registry(self, chain):
        protocol, schedule = chain
        txs = flat_transmissions(schedule)
        txs.remove(find_tx(txs, receiver=N, packet=2))
        registry = MetricsRegistry()
        with use_registry(registry):
            recheck(protocol, schedule, txs)
        snapshot = registry.snapshot()
        counters = [
            row for row in snapshot["counters"] if row["name"] == "check.violations"
        ]
        assert counters == [
            {"name": "check.violations", "labels": {"rule": "coverage"}, "value": 1}
        ]

    def test_verify_on_miss_rejects_bad_compiles(self, monkeypatch):
        # A protocol whose relay double-sends violates send-capacity; with
        # verify=True the fresh compile must be rejected *before* caching.
        class DoubleSendChain(ChainProtocol):
            def transmissions(self, slot, view):
                out = list(super().transmissions(slot, view))
                for tx in list(out):
                    if tx.sender == 1:
                        out.append(tx)
                return out

        import repro.exec.compiler as compiler_module

        monkeypatch.setattr(
            compiler_module, "build_protocol", lambda *a, **k: DoubleSendChain(4)
        )
        cache = ScheduleCache(disk=False)
        with pytest.raises(ScheduleError, match="static verification"):
            compile_schedule("chain", 4, num_packets=3, cache=cache, verify=True)
        assert len(cache) == 0  # the bad artifact never entered the cache

    def test_verify_on_miss_accepts_good_compiles(self):
        cache = ScheduleCache(disk=False)
        schedule = compile_schedule(
            "chain", 5, num_packets=4, cache=cache, verify=True
        )
        assert schedule.num_slots == ChainProtocol(5).slots_for_packets(4)

    def test_derived_num_packets_matches_request(self):
        # check_config compiles via num_packets and checks the same prefix.
        report = check_config("chain", 5, num_packets=7, cache=ScheduleCache(disk=False))
        assert report.num_packets == 7
        assert report.ok
