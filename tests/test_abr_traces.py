"""Tests for capacity traces: generators, validation, file loading, profiles."""

from __future__ import annotations

import json

import pytest

from repro.abr.traces import (
    TRACE_PROFILES,
    CapacityTrace,
    build_profile,
    constant_trace,
    load_capacity_trace,
    on_off_trace,
    sinusoid_trace,
    step_trace,
)
from repro.core.errors import ReproError


class TestCapacityTrace:
    def test_cycles_past_span(self):
        trace = CapacityTrace(name="t", capacities=(1.0, 2.0, 3.0))
        assert trace.capacity_at(0) == 1.0
        assert trace.capacity_at(4) == 2.0
        assert trace.capacity_at(300) == 1.0

    def test_min_mean(self):
        trace = CapacityTrace(name="t", capacities=(1.0, 3.0))
        assert trace.min_capacity == 1.0
        assert trace.mean_capacity == 2.0

    def test_scaled(self):
        trace = CapacityTrace(name="t", capacities=(1.0, 2.0)).scaled(2.5)
        assert trace.capacities == (2.5, 5.0)
        with pytest.raises(ReproError):
            trace.scaled(0)

    def test_rejects_empty_negative_nonfinite_allzero(self):
        with pytest.raises(ReproError, match="empty"):
            CapacityTrace(name="t", capacities=())
        with pytest.raises(ReproError, match="sample 1 is negative"):
            CapacityTrace(name="t", capacities=(1.0, -2.0))
        with pytest.raises(ReproError, match="sample 0 is not finite"):
            CapacityTrace(name="t", capacities=(float("nan"), 1.0))
        with pytest.raises(ReproError, match="identically zero"):
            CapacityTrace(name="t", capacities=(0.0, 0.0))

    def test_negative_slot_rejected(self):
        trace = constant_trace(1.0, 4)
        with pytest.raises(ReproError):
            trace.capacity_at(-1)


class TestGenerators:
    def test_constant(self):
        trace = constant_trace(3.0, 5)
        assert trace.capacities == (3.0,) * 5

    def test_step_duty_cycle(self):
        trace = step_trace(4.0, 1.0, 4, 8, duty=0.5)
        assert trace.capacities == (4.0, 4.0, 1.0, 1.0) * 2

    def test_sinusoid_clamped_nonnegative(self):
        trace = sinusoid_trace(1.0, 5.0, 8, 32)
        assert min(trace.capacities) == 0.0
        assert max(trace.capacities) > 1.0

    def test_on_off_deterministic_in_seed(self):
        a = on_off_trace(8.0, 0.5, 0.2, 0.4, 64, seed=7)
        b = on_off_trace(8.0, 0.5, 0.2, 0.4, 64, seed=7)
        c = on_off_trace(8.0, 0.5, 0.2, 0.4, 64, seed=8)
        assert a.capacities == b.capacities
        assert a.capacities != c.capacities
        assert set(a.capacities) <= {8.0, 0.5}

    def test_on_off_probability_validation(self):
        with pytest.raises(ReproError, match="p_fail"):
            on_off_trace(1.0, 0.0, 1.5, 0.5, 8)

    def test_bad_spans_and_periods(self):
        with pytest.raises(ReproError):
            constant_trace(1.0, 0)
        with pytest.raises(ReproError):
            step_trace(2.0, 1.0, 1, 8)
        with pytest.raises(ReproError):
            sinusoid_trace(1.0, 0.5, 1, 8)


class TestLoader:
    def test_text_format_with_comments(self, tmp_path):
        p = tmp_path / "link.trace"
        p.write_text("# mahimahi-style\n2.0\n\n3.5  # burst\n1.0\n")
        trace = load_capacity_trace(p)
        assert trace.name == "link"
        assert trace.capacities == (2.0, 3.5, 1.0)

    def test_text_format_bad_line_named(self, tmp_path):
        p = tmp_path / "bad.trace"
        p.write_text("1.0\nnope\n")
        with pytest.raises(ReproError, match="line 2 is not a number"):
            load_capacity_trace(p)

    def test_json_array(self, tmp_path):
        p = tmp_path / "t.json"
        p.write_text(json.dumps([1, 2.5, 3]))
        assert load_capacity_trace(p).capacities == (1.0, 2.5, 3.0)

    def test_json_object_with_name(self, tmp_path):
        p = tmp_path / "t.json"
        p.write_text(json.dumps({"name": "cellular", "capacities": [4, 2]}))
        trace = load_capacity_trace(p)
        assert trace.name == "cellular"
        assert trace.capacities == (4.0, 2.0)

    def test_json_object_missing_key(self, tmp_path):
        p = tmp_path / "t.json"
        p.write_text(json.dumps({"name": "x"}))
        with pytest.raises(ReproError, match="capacities"):
            load_capacity_trace(p)

    def test_json_bad_sample_named(self, tmp_path):
        p = tmp_path / "t.json"
        p.write_text(json.dumps([1.0, "x"]))
        with pytest.raises(ReproError, match="sample 1 is not a number"):
            load_capacity_trace(p)

    def test_missing_file(self, tmp_path):
        with pytest.raises(ReproError, match="cannot read"):
            load_capacity_trace(tmp_path / "absent.trace")


class TestProfiles:
    @pytest.mark.parametrize("name", sorted(TRACE_PROFILES))
    def test_profiles_build_and_are_deterministic(self, name):
        a = build_profile(name, 64, seed=3)
        b = build_profile(name, 64, seed=3)
        assert a.name == name
        assert a.capacities == b.capacities
        assert len(a) == 64

    def test_unknown_profile(self):
        with pytest.raises(ReproError, match="unknown trace profile"):
            build_profile("lte", 32)

    def test_scale(self):
        assert build_profile("steady", 8, scale=0.5).capacities == (4.0,) * 8
        with pytest.raises(ReproError):
            build_profile("steady", 8, scale=0)
