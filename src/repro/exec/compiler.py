"""Schedule compiler: lower a protocol's per-slot scheduling into flat arrays.

For a fixed ``(scheme, construction, N, d, D, T_c)`` the paper's schedules are
deterministic, yet every experiment re-derives them — walking tree positions
or stepping the hypercube exchange — once per run even though a sweep replays
the identical schedule across dozens of seeds and drop rates.  The compiler
runs the protocol's scheduling loop **once**, against the same holdings
semantics the engine uses, and records every transmission into contiguous
``array('i')`` columns (sender, receiver, packet, arrival slot, latency,
tree) with a per-slot offset index.  The result is a small, picklable
:class:`CompiledSchedule` that

* replays through the engine's fast path slot-for-slot identically to the
  object-based scheduling (``SimConfig.compiled_schedule``),
* replays without the engine at all for sweep workers
  (:mod:`repro.exec.replay`), and
* crosses process boundaries once per worker instead of once per task.

:func:`compile_schedule` adds the content-addressed cache from
:mod:`repro.exec.cache` in front of the lowering.
"""

from __future__ import annotations

import heapq
from array import array
from collections.abc import Iterator
from typing import TYPE_CHECKING, Any, cast

from repro.core.errors import ReproError, ScheduleError
from repro.core.packet import Transmission
from repro.exec.cache import ScheduleCache, ScheduleKey, default_cache

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.protocol import StreamingProtocol

__all__ = [
    "COMPILABLE_SCHEMES",
    "CompiledSchedule",
    "compile_protocol",
    "compile_schedule",
    "build_protocol",
]

#: Schemes with a deterministic loss-free schedule the compiler can lower.
#: (``gossip`` is randomized; its schedule is not a function of the key.)
COMPILABLE_SCHEMES = (
    "multi-tree",
    "hypercube",
    "grouped-hypercube",
    "chain",
    "single-tree",
)


class CompiledSchedule:
    """A protocol's full transmission timetable as flat per-slot arrays.

    Attributes:
        key: the :class:`~repro.exec.cache.ScheduleKey` identity (None for
            ad-hoc :func:`compile_protocol` lowerings).
        num_slots: compiled horizon.
        node_ids: receiver ids, in protocol order.
        source_ids: origin node ids.
        starts: ``array('i')`` of length ``num_slots + 1``; transmissions of
            slot ``s`` occupy flat indices ``starts[s]:starts[s+1]``.
        senders / receivers / packets / arrivals / latencies / trees: parallel
            ``array('i')`` columns (``trees`` uses ``-1`` for "no tree").
    """

    __slots__ = (
        "key", "num_slots", "node_ids", "source_ids",
        "starts", "senders", "receivers", "packets",
        "arrivals", "latencies", "trees", "_batches", "_np_cache",
    )

    def __init__(
        self,
        *,
        key: ScheduleKey | None,
        num_slots: int,
        node_ids: tuple[int, ...],
        source_ids: tuple[int, ...],
        starts: array,
        senders: array,
        receivers: array,
        packets: array,
        arrivals: array,
        latencies: array,
        trees: array,
    ) -> None:
        self.key = key
        self.num_slots = num_slots
        self.node_ids = node_ids
        self.source_ids = source_ids
        self.starts = starts
        self.senders = senders
        self.receivers = receivers
        self.packets = packets
        self.arrivals = arrivals
        self.latencies = latencies
        self.trees = trees
        self._batches: list[list[Transmission]] | None = None
        # Lowered NumPy columns for the batch kernel (repro.exec.batch);
        # built lazily once per process, never pickled.
        self._np_cache: Any = None

    # ----------------------------------------------------------------- basics
    @property
    def size(self) -> int:
        """Total transmissions across the horizon."""
        return len(self.senders)

    @property
    def num_nodes(self) -> int:
        return len(self.node_ids)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CompiledSchedule):
            return NotImplemented
        return (
            self.key == other.key
            and self.num_slots == other.num_slots
            and self.node_ids == other.node_ids
            and self.source_ids == other.source_ids
            and self.starts == other.starts
            and self.senders == other.senders
            and self.receivers == other.receivers
            and self.packets == other.packets
            and self.arrivals == other.arrivals
            and self.latencies == other.latencies
            and self.trees == other.trees
        )

    def __getstate__(self) -> dict[str, Any]:
        # The materialized Transmission batches and the lowered NumPy columns
        # are per-process caches; never pickle them (workers rebuild lazily).
        return {
            name: getattr(self, name)
            for name in self.__slots__
            if name not in ("_batches", "_np_cache")
        }

    def __setstate__(self, state: dict[str, Any]) -> None:
        for name, value in state.items():
            setattr(self, name, value)
        self._batches = None
        self._np_cache = None

    def __repr__(self) -> str:
        return (
            f"CompiledSchedule(key={self.key!r}, num_slots={self.num_slots}, "
            f"transmissions={self.size})"
        )

    # ------------------------------------------------------------------ replay
    def _materialize(self) -> list[list[Transmission]]:
        batches: list[list[Transmission]] = []
        starts = self.starts
        for slot in range(self.num_slots):
            lo, hi = starts[slot], starts[slot + 1]
            batches.append(
                [
                    Transmission(
                        slot=slot,
                        sender=self.senders[i],
                        receiver=self.receivers[i],
                        packet=self.packets[i],
                        latency=self.latencies[i],
                        tree=self.trees[i] if self.trees[i] >= 0 else None,
                    )
                    for i in range(lo, hi)
                ]
            )
        return batches

    def batch(self, slot: int) -> list[Transmission]:
        """Fresh list of the transmissions initiated during ``slot``.

        Materialized :class:`Transmission` objects are built once per process
        and shared; the returned list is a copy the engine may extend.
        """
        if not 0 <= slot < self.num_slots:
            raise ReproError(
                f"slot {slot} outside compiled horizon [0, {self.num_slots})"
            )
        if self._batches is None:
            self._batches = self._materialize()
        return list(self._batches[slot])

    def iter_transmissions(self) -> Iterator[Transmission]:
        """All transmissions in slot order (materializing lazily)."""
        if self._batches is None:
            self._batches = self._materialize()
        for batch in self._batches:
            yield from batch


class _CompileView:
    """Holdings view with the engine's exact semantics (arrival < slot)."""

    __slots__ = ("arrivals", "slot")

    def __init__(self, arrivals: dict[int, dict[int, int]]) -> None:
        self.arrivals = arrivals
        self.slot = 0

    def holds(self, node: int, packet: int) -> bool:
        trace = self.arrivals.get(node)
        if trace is None:
            return False
        arrival = trace.get(packet)
        return arrival is not None and arrival < self.slot

    def arrival_slot(self, node: int, packet: int) -> int | None:
        trace = self.arrivals.get(node)
        if trace is None:
            return None
        return trace.get(packet)

    def packets_of(self, node: int) -> frozenset[int]:
        trace = self.arrivals.get(node)
        if trace is None:
            return frozenset()
        slot = self.slot
        return frozenset(p for p, a in trace.items() if a < slot)


def compile_protocol(
    protocol: StreamingProtocol, num_slots: int, *, key: ScheduleKey | None = None
) -> CompiledSchedule:
    """Lower ``protocol``'s first ``num_slots`` slots into a :class:`CompiledSchedule`.

    Runs the protocol's own scheduling loop against a loss-free holdings model
    identical to the engine's (first arrival wins, a slot-``t`` arrival is
    forwardable from ``t + 1``, link latencies honored), so the recorded
    timetable is exactly what :func:`~repro.core.engine.simulate` would
    execute.  State-driven protocols (the hypercube exchange) are stepped
    sequentially, same as in a live run.
    """
    if num_slots < 0:
        raise ReproError(f"num_slots must be non-negative, got {num_slots}")
    protocol.reset()
    node_ids = tuple(protocol.node_ids)
    source_ids = tuple(sorted(protocol.source_ids))
    holdings: dict[int, dict[int, int]] = {nid: {} for nid in node_ids}
    for sid in source_ids:
        holdings.setdefault(sid, {})
    view = _CompileView(holdings)

    starts = array("i", [0])
    senders = array("i")
    receivers = array("i")
    packets = array("i")
    arrivals = array("i")
    latencies = array("i")
    trees = array("i")

    in_flight: list[tuple[int, int, Transmission]] = []
    seq = 0
    for slot in range(num_slots):
        view.slot = slot
        for tx in protocol.transmissions(slot, view):
            senders.append(tx.sender)
            receivers.append(tx.receiver)
            packets.append(tx.packet)
            arrivals.append(tx.arrival_slot)
            latencies.append(tx.latency)
            trees.append(-1 if tx.tree is None else tx.tree)
            seq += 1
            heapq.heappush(in_flight, (tx.arrival_slot, seq, tx))
        starts.append(len(senders))
        # Deliver everything arriving by the end of this slot (engine order:
        # earliest arrival first, ties by send sequence; first arrival wins).
        while in_flight and in_flight[0][0] <= slot:
            _, _, tx = heapq.heappop(in_flight)
            trace = holdings.get(tx.receiver)
            if trace is None:
                raise ReproError(f"unknown receiver node {tx.receiver}")
            if tx.packet not in trace:
                trace[tx.packet] = tx.arrival_slot
    return CompiledSchedule(
        key=key,
        num_slots=num_slots,
        node_ids=node_ids,
        source_ids=source_ids,
        starts=starts,
        senders=senders,
        receivers=receivers,
        packets=packets,
        arrivals=arrivals,
        latencies=latencies,
        trees=trees,
    )


def build_protocol(
    scheme: str,
    num_nodes: int,
    degree: int = 3,
    *,
    construction: str = "structured",
    mode: str = "prerecorded",
    latency: int = 1,
) -> StreamingProtocol:
    """Instantiate the protocol object a :class:`ScheduleKey` describes."""
    if scheme == "multi-tree":
        from repro.trees import MultiTreeProtocol

        return MultiTreeProtocol(
            num_nodes, degree, construction=construction, mode=mode, latency=latency
        )
    if scheme == "hypercube":
        from repro.hypercube import HypercubeCascadeProtocol

        return HypercubeCascadeProtocol(num_nodes)
    if scheme == "grouped-hypercube":
        from repro.hypercube import GroupedHypercubeProtocol

        return GroupedHypercubeProtocol(num_nodes, degree)
    if scheme == "chain":
        from repro.baselines import ChainProtocol

        return ChainProtocol(num_nodes)
    if scheme == "single-tree":
        from repro.baselines import SingleTreeProtocol

        return SingleTreeProtocol(num_nodes, degree)
    raise ReproError(
        f"scheme {scheme!r} is not compilable; choose from {COMPILABLE_SCHEMES}"
    )


def _normalized_key(
    scheme: str,
    num_nodes: int,
    degree: int,
    num_slots: int,
    construction: str,
    mode: str,
    latency: int,
) -> ScheduleKey:
    if scheme not in COMPILABLE_SCHEMES:
        raise ReproError(
            f"scheme {scheme!r} is not compilable; choose from {COMPILABLE_SCHEMES}"
        )
    if scheme != "multi-tree":
        # These schemes have exactly one construction/mode; pin the key fields
        # so equivalent requests share a cache entry.
        construction = "cascade" if "hypercube" in scheme else scheme
        mode = "-"
    return ScheduleKey(
        scheme=scheme,
        construction=construction,
        num_nodes=num_nodes,
        degree=degree,
        num_slots=num_slots,
        mode=mode,
        latency=latency,
    )


def compile_schedule(
    scheme: str,
    num_nodes: int,
    degree: int = 3,
    *,
    num_slots: int | None = None,
    num_packets: int | None = None,
    construction: str = "structured",
    mode: str = "prerecorded",
    latency: int = 1,
    cache: ScheduleCache | None = None,
    provenance: dict | None = None,
    verify: bool = False,
) -> CompiledSchedule:
    """Compile (or fetch from cache) the schedule for one configuration.

    Exactly one of ``num_slots`` / ``num_packets`` must be given;
    ``num_packets`` derives the horizon from the scheme's
    ``slots_for_packets`` bound.  ``provenance``, when passed, receives the
    cache outcome (``memory``/``disk``/``miss``) and the content token.

    ``verify=True`` enables verify-on-miss: a freshly compiled schedule is
    statically model-checked (:func:`repro.check.check_schedule`) and a
    :class:`~repro.core.errors.ScheduleError` is raised **before** the
    artifact may enter the cache if any invariant is violated.  Cache hits
    skip re-verification — they were certified when first stored.
    """
    if (num_slots is None) == (num_packets is None):
        raise ReproError("pass exactly one of num_slots / num_packets")
    protocol: StreamingProtocol | None = None
    if num_slots is None:
        if num_packets is None:  # unreachable: guarded by the check above
            raise ReproError("pass exactly one of num_slots / num_packets")
        protocol = build_protocol(
            scheme, num_nodes, degree,
            construction=construction, mode=mode, latency=latency,
        )
        num_slots = protocol.slots_for_packets(num_packets)
    horizon: int = num_slots
    key = _normalized_key(
        scheme, num_nodes, degree, horizon, construction, mode, latency
    )
    cache = cache if cache is not None else default_cache()

    def _build() -> CompiledSchedule:
        built = protocol if protocol is not None else build_protocol(
            scheme, num_nodes, degree,
            construction=construction, mode=mode, latency=latency,
        )
        schedule = compile_protocol(built, horizon, key=key)
        if verify:
            # Import lazily: repro.check depends on this module.
            from repro.check.schedule import check_schedule

            report = check_schedule(
                schedule, protocol=built, num_packets=num_packets
            )
            if not report.ok:
                findings = "\n  ".join(str(v) for v in report.violations[:10])
                raise ScheduleError(
                    f"compiled schedule failed static verification — "
                    f"{report.summary()}\n  {findings}"
                )
        return schedule

    return cast(CompiledSchedule, cache.get_or_compile(key, _build, provenance))
