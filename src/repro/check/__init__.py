"""Static verification layer: schedule model checking and project lint.

Two pillars, both engine-free:

* :mod:`repro.check.schedule` / :mod:`repro.check.invariants` — certify a
  :class:`~repro.exec.compiler.CompiledSchedule` against the paper's
  communication model (per-slot capacities, causal forwarding, exactly-once
  coverage) and the theorem bounds (Thm 2's ``h*d`` delay/buffer for the
  multi-tree scheme, the hypercube's 2-packet buffer, Prop 2's delay bound)
  without running a single simulated slot.  Exposed as ``repro check`` and
  as ``compile_schedule(..., verify=True)`` (verify-on-miss: a fresh compile
  must pass before it may enter the schedule cache).
* :mod:`repro.check.lint` — an AST lint (stdlib :mod:`ast` only) enforcing
  the project's determinism and error-handling discipline: seeded RNG only
  (REP001), wall-clock reads confined to ``repro/obs/`` (REP002), no bare
  ``assert`` in library code (REP003), no iteration over unordered set
  expressions where order feeds transmission emission (REP004).
* :mod:`repro.check.model` / :mod:`repro.check.analyzers` — a cached
  whole-project model (ASTs, symbol tables, import graph, approximate call
  graph) and the passes that need it: process-pool shared-state mutation
  (REP005), metric/event-name drift against :mod:`repro.obs.names`
  (REP006), frozen-spec mutation (REP007), and nondeterminism taint from
  RNG/clock sources into result sinks (REP008).

All lint layers run through :func:`repro.check.project.lint_project`
(``repro lint``): per-file rules + analyzer passes, minus the committed
baseline (``.repro-lint-baseline.json``), with ``--stats`` timings fed to
the bench-history ledger.

``docs/CHECKS.md`` catalogues every invariant and lint rule with its paper
reference and rationale.
"""

from repro.check.analyzers import ANALYZER_RULES, run_analyzers
from repro.check.invariants import RULES, ScheduleFacts, Violation
from repro.check.lint import (
    LINT_RULES,
    LintViolation,
    Suppressions,
    format_violations,
    lint_file,
    lint_paths,
    lint_source,
)
from repro.check.model import (
    ModuleInfo,
    ProjectModel,
    build_project_model,
)
from repro.check.project import (
    ALL_RULES,
    DEFAULT_BASELINE_PATH,
    ProjectLintReport,
    lint_project,
    load_baseline,
    save_baseline,
)
from repro.check.schedule import (
    DEFAULT_GRID_DEGREES,
    DEFAULT_GRID_NODES,
    CheckReport,
    check_config,
    check_schedule,
    smoke_grid,
)

__all__ = [
    "ALL_RULES",
    "ANALYZER_RULES",
    "DEFAULT_BASELINE_PATH",
    "DEFAULT_GRID_DEGREES",
    "DEFAULT_GRID_NODES",
    "CheckReport",
    "LINT_RULES",
    "LintViolation",
    "ModuleInfo",
    "ProjectLintReport",
    "ProjectModel",
    "RULES",
    "ScheduleFacts",
    "Suppressions",
    "Violation",
    "build_project_model",
    "check_config",
    "check_schedule",
    "format_violations",
    "lint_file",
    "lint_paths",
    "lint_project",
    "lint_source",
    "load_baseline",
    "run_analyzers",
    "save_baseline",
    "smoke_grid",
]
