"""Tests for the per-node delay/buffer distribution analytics."""

from __future__ import annotations

import pytest

from repro.trees.distribution import (
    buffer_histogram,
    delay_distribution,
    delay_histogram,
    delays_by_depth,
)
from repro.trees.analysis import all_playback_delays, theorem2_bound
from repro.trees.forest import MultiTreeForest


@pytest.fixture(scope="module")
def forest():
    return MultiTreeForest.construct(100, 3)


class TestDelayDistribution:
    def test_summary_consistency(self, forest):
        dist = delay_distribution(forest)
        assert dist.num_nodes == 100
        assert dist.minimum <= dist.median <= dist.maximum
        assert dist.minimum <= dist.mean <= dist.maximum
        assert dist.quantiles[50] <= dist.quantiles[90] <= dist.quantiles[99]
        assert dist.maximum <= theorem2_bound(100, 3)

    def test_matches_raw_delays(self, forest):
        delays = list(all_playback_delays(forest).values())
        dist = delay_distribution(forest)
        assert dist.minimum == min(delays)
        assert dist.maximum == max(delays)
        assert dist.mean == pytest.approx(sum(delays) / len(delays))

    def test_histogram_partitions_population(self, forest):
        hist = delay_histogram(forest)
        assert sum(hist.values()) == 100
        assert min(hist) == delay_distribution(forest).minimum
        assert list(hist) == sorted(hist)

    def test_buffer_histogram(self, forest):
        hist = buffer_histogram(forest)
        assert sum(hist.values()) == 100
        assert max(hist) <= forest.height * 3  # Theorem 2 corollary

    def test_small_forest(self):
        tiny = MultiTreeForest.construct(2, 2)
        dist = delay_distribution(tiny)
        assert dist.num_nodes == 2


class TestDelaysByDepth:
    def test_depths_cover_tree(self, forest):
        by_depth = delays_by_depth(forest)
        assert min(by_depth) == 1
        assert max(by_depth) == forest.trees[0].height

    def test_deeper_never_faster_on_average(self, forest):
        by_depth = delays_by_depth(forest)
        means = [mean for _, mean, _ in by_depth.values()]
        # Depth in T_0 correlates with delay even though it is not the whole
        # story (positions in the other trees matter too).
        assert means[0] < means[-1]

    def test_stats_ordered(self, forest):
        for low, mean, high in delays_by_depth(forest).values():
            assert low <= mean <= high
