"""Single-hypercube streaming for ``N = 2^k - 1`` (Section 3.1).

The ``N + 1`` participants (receivers plus the source, vertex 0) are the
vertices of a ``k``-dimensional hypercube.  In slot ``t`` the vertices pair up
along dimension ``t mod k`` — vertex ids differing only in bit ``t mod k`` —
and each pair exchanges packets: each side sends the *newest* packet it holds
that its partner lacks.  The source always injects the next fresh packet
(packet ``t`` in slot ``t``) to its partner; the source's partner has nothing
to send back, and that spare send slot is what the arbitrary-``N`` cascade of
Section 3.2 uses to feed the next hypercube.

This generalizes Farley's multi-message broadcast to an infinite stream and
reaches the paper's doubling state (Figure 5): at the start of a slot
``N / 2^i`` nodes hold the ``i``-th most recent packet; after the slot every
count has doubled, the oldest packet is held by everybody and is consumed.
Proposition 1's guarantees follow: each node talks to exactly ``k`` neighbors,
starts playback after slot ``k + 1``, and buffers ``O(1)`` packets.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.errors import ConstructionError

__all__ = [
    "dimension_of_slot",
    "partner_of",
    "slot_pairs",
    "is_special_population",
    "dimension_for_population",
    "CubeExchange",
    "CubeTransfer",
]


def is_special_population(num_nodes: int) -> bool:
    """True when ``N = 2^k - 1`` for some integer ``k >= 1``.

    Examples:
        >>> [n for n in range(1, 20) if is_special_population(n)]
        [1, 3, 7, 15]
    """
    return num_nodes >= 1 and (num_nodes + 1) & num_nodes == 0


def dimension_for_population(num_nodes: int) -> int:
    """``k`` with ``N = 2^k - 1``; raises for non-special populations."""
    if not is_special_population(num_nodes):
        raise ConstructionError(
            f"hypercube scheme needs N = 2^k - 1 receivers, got {num_nodes}"
        )
    return num_nodes.bit_length()


def dimension_of_slot(slot: int, k: int) -> int:
    """Cube dimension used for pairing in a given (cube-local) slot."""
    if k < 1:
        raise ConstructionError(f"cube dimension must be >= 1, got {k}")
    if slot < 0:
        raise ConstructionError(f"slot must be >= 0, got {slot}")
    return slot % k


def partner_of(vertex: int, dimension: int) -> int:
    """The vertex paired with ``vertex`` along ``dimension``."""
    return vertex ^ (1 << dimension)


def slot_pairs(k: int, slot: int) -> list[tuple[int, int]]:
    """All ``2^{k-1}`` vertex pairs for a (cube-local) slot, lowest id first.

    This is the communication pattern of the paper's Figure 7: every pair lies
    along the single dimension ``slot mod k``.

    Examples:
        >>> slot_pairs(3, 0)
        [(0, 1), (2, 3), (4, 5), (6, 7)]
        >>> slot_pairs(3, 2)
        [(0, 4), (1, 5), (2, 6), (3, 7)]
    """
    j = dimension_of_slot(slot, k)
    bit = 1 << j
    return [(v, v | bit) for v in range(1 << k) if not v & bit]


@dataclass(frozen=True, slots=True)
class CubeTransfer:
    """One intra-cube packet movement in cube-local terms."""

    sender: int  # local vertex id
    receiver: int  # local vertex id
    packet: int  # stream-local packet index


@dataclass
class CubeExchange:
    """Deterministic state machine producing the cube's per-slot exchanges.

    Local vertex 0 is the (possibly virtual) source; vertices ``1..2^k - 1``
    are receivers.  :meth:`step` must be called once per consecutive local
    slot starting at 0.  The machine tracks which packets each receiver holds
    *and can forward* (received in a strictly earlier slot).

    Attributes:
        k: cube dimension.
        ghosts: vacant vertices (departed members with no repair).  Ghosts
            never hold or send packets, and deliveries to them are dropped.
            Vacancies are never graceful: a ghost at a power-of-two vertex
            loses the injections targeted at it outright, and *any* ghost
            idles its pair each cycle, removing two transmissions per cycle
            while demand drops by only one — its neighbors fall behind
            without bound.  This zero-slack property is the measured
            justification for immediate membership repair
            (see :mod:`repro.hypercube.dynamics`).
    """

    k: int
    ghosts: frozenset[int] = frozenset()
    _holdings: list[set[int]] = field(init=False)
    _pending: list[list[int]] = field(init=False)
    _slot: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ConstructionError(f"cube dimension must be >= 1, got {self.k}")
        size = 1 << self.k
        bad = [g for g in self.ghosts if not 1 <= g < size]
        if bad:
            raise ConstructionError(f"ghost vertices {bad} outside 1..{size - 1}")
        self._holdings = [set() for _ in range(size)]
        self._pending = [[] for _ in range(size)]

    @property
    def num_receivers(self) -> int:
        return (1 << self.k) - 1

    @property
    def slot(self) -> int:
        """Next local slot :meth:`step` will produce."""
        return self._slot

    def holdings(self, vertex: int) -> frozenset[int]:
        """Packets ``vertex`` holds and may forward in the current slot."""
        return frozenset(self._holdings[vertex])

    def port_vertex(self, slot: int) -> int:
        """The source's partner (the spare-capacity vertex) in a local slot."""
        return 1 << dimension_of_slot(slot, self.k)

    def step(self, *, inject: int | None) -> list[CubeTransfer]:
        """Advance one local slot.

        Args:
            inject: packet index the source delivers to its partner this slot,
                or None if the feeder has nothing yet (cascade warm-up).

        Returns:
            the slot's transfers, *excluding* the injection itself (the caller
            owns the injection's sender identity) but including every
            receiver-to-receiver exchange.
        """
        j = dimension_of_slot(self._slot, self.k)
        bit = 1 << j
        transfers: list[CubeTransfer] = []
        for low in range(1 << self.k):
            if low & bit:
                continue
            high = low | bit
            if low == 0:
                # Source pair: injection handled by caller; partner's send
                # capacity is spare (exported by the cascade).
                continue
            self._exchange(low, high, transfers)

        # Commit: this slot's receptions become forwardable next slot.
        # Deliveries to ghost vertices are dropped (nobody is there).
        for transfer in transfers:
            if transfer.receiver not in self.ghosts:
                self._pending[transfer.receiver].append(transfer.packet)
        if inject is not None and (1 << j) not in self.ghosts:
            self._pending[1 << j].append(inject)
        for vertex in range(1 << self.k):
            pending = self._pending[vertex]
            if pending:
                self._holdings[vertex].update(pending)
                pending.clear()
        self._slot += 1
        return transfers

    def _exchange(self, a: int, b: int, out: list[CubeTransfer]) -> None:
        """Greedy pairwise exchange: each side sends the newest packet the
        other lacks (nothing if the partner holds a superset).  Ghost
        vertices hold nothing, so a ghost's partner idles this slot."""
        hold_a = self._holdings[a]
        hold_b = self._holdings[b]
        a_to_b = max(hold_a - hold_b, default=None) if b not in self.ghosts else None
        b_to_a = max(hold_b - hold_a, default=None) if a not in self.ghosts else None
        if a_to_b is not None:
            out.append(CubeTransfer(a, b, a_to_b))
        if b_to_a is not None:
            out.append(CubeTransfer(b, a, b_to_a))
