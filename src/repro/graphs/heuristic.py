"""Randomized heuristic for Two Interior-Disjoint Trees on larger graphs.

The exact search (:mod:`repro.graphs.disjoint_trees`) is exponential — fine
for validating the NP-completeness reduction, useless beyond ~20 vertices.
Since the decision problem is NP-complete, larger instances call for a
heuristic: we randomize a greedy bipartition of the vertices into candidate
interior sets and locally repair until both sets are connected-and-dominating
(the exact feasibility characterization), restarting on failure.

The heuristic is *sound* (a returned pair is always verified) but incomplete:
it may miss solvable instances.  The bench measures its success rate against
the exact solver on small graphs and its behaviour on graphs the exact search
cannot touch.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.core.errors import ConstructionError
from repro.graphs.disjoint_trees import (
    is_interior_set_feasible,
    spanning_tree_with_interior,
)

__all__ = ["heuristic_two_interior_disjoint_trees"]


def _repair(graph: nx.Graph, root, mine: set, other: set, rng, budget: int) -> bool:
    """Local repair: grow ``mine`` (stealing free vertices only) until it is
    connected and dominating; returns success."""
    for _ in range(budget):
        if is_interior_set_feasible(graph, root, mine):
            return True
        closure = mine | {root}
        # Prefer fixing domination, then connectivity, by adding a free
        # vertex adjacent to the closure.
        uncovered = [
            v
            for v in graph.nodes
            if v not in closure and not any(u in closure for u in graph.neighbors(v))
        ]
        candidates: list = []
        if uncovered:
            target = uncovered[int(rng.integers(len(uncovered)))]
            candidates = [
                u
                for u in graph.neighbors(target)
                if u != root and u not in mine and u not in other
            ]
        if not candidates:
            fringe = {
                u
                for v in closure
                for u in graph.neighbors(v)
                if u != root and u not in mine and u not in other
            }
            candidates = sorted(fringe)
        if not candidates:
            return False
        mine.add(candidates[int(rng.integers(len(candidates)))])
    return is_interior_set_feasible(graph, root, mine)


def heuristic_two_interior_disjoint_trees(
    graph: nx.Graph,
    root,
    *,
    restarts: int = 40,
    seed: int | None = None,
) -> tuple[nx.Graph, nx.Graph] | None:
    """Randomized search for two interior-disjoint spanning trees.

    Returns a verified tree pair or None (which does **not** prove
    infeasibility).  Runs in polynomial time per restart.
    """
    if root not in graph:
        raise ConstructionError(f"root {root!r} not in graph")
    if restarts < 1:
        raise ConstructionError(f"restarts must be >= 1, got {restarts}")
    if graph.number_of_nodes() < 2 or not nx.is_connected(graph):
        return None
    rng = np.random.default_rng(seed)
    others = [v for v in graph.nodes if v != root]
    budget = 4 * len(others) + 8

    for _ in range(restarts):
        order = list(rng.permutation(len(others)))
        shuffled = [others[i] for i in order]
        # Seed each side with one random vertex, then repair alternately.
        side_a: set = {shuffled[0]}
        side_b: set = {shuffled[1]} if len(shuffled) > 1 else set()
        ok_a = _repair(graph, root, side_a, side_b, rng, budget)
        ok_b = _repair(graph, root, side_b, side_a, rng, budget)
        if not (ok_a and ok_b):
            continue
        if side_a & side_b:
            continue
        tree_a = spanning_tree_with_interior(graph, root, side_a)
        tree_b = spanning_tree_with_interior(graph, root, side_b)
        return tree_a, tree_b
    return None
