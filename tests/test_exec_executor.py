"""Sweep executor: determinism across serial/parallel, fallback, policy."""

from __future__ import annotations

import pytest

from repro.core.errors import ReproError
from repro.exec.cache import ScheduleCache
from repro.exec.compiler import compile_schedule
from repro.exec.executor import (
    ExecutorPolicy,
    SweepExecutor,
    replay_sweep_task,
    worker_payload,
)
from repro.obs import MetricsRegistry


def _schedule(n=31, d=2, packets=10):
    return compile_schedule("multi-tree", n, d, num_packets=packets, cache=ScheduleCache())


def _grid(packets=10):
    return [(seed, rate, packets) for rate in (0.0, 0.05) for seed in range(4)]


def double_task(task):
    (x,) = task
    return x * 2


def payload_echo_task(task):
    return (task, worker_payload())


def span_recording_task(task):
    from repro.obs.spans import worker_span

    (x,) = task
    with worker_span("task.run", x=x):
        return x


class TestPolicy:
    def test_invalid_workers(self):
        with pytest.raises(ReproError):
            ExecutorPolicy(max_workers=0)

    def test_invalid_chunksize(self):
        with pytest.raises(ReproError):
            ExecutorPolicy(chunksize=0)

    def test_invalid_mode(self):
        with pytest.raises(ReproError):
            ExecutorPolicy(mode="sometimes")

    def test_resolved_workers_positive(self):
        assert ExecutorPolicy().resolved_workers() >= 1
        assert ExecutorPolicy(max_workers=7).resolved_workers() == 7


class TestSerialParallelEquality:
    def test_rows_identical_for_fixed_grid(self):
        schedule = _schedule()
        serial = SweepExecutor(ExecutorPolicy(mode="serial")).map(
            replay_sweep_task, _grid(), payload=schedule
        )
        parallel = SweepExecutor(
            ExecutorPolicy(mode="parallel", max_workers=2, chunksize=2)
        ).map(replay_sweep_task, _grid(), payload=schedule)
        assert serial == parallel
        assert [r["seed"] for r in serial] == [s for _ in (0.0, 0.05) for s in range(4)]

    def test_registry_snapshots_identical(self):
        schedule = _schedule()
        serial_reg, parallel_reg = MetricsRegistry(), MetricsRegistry()
        a = SweepExecutor(ExecutorPolicy(mode="serial"), registry=serial_reg).map(
            replay_sweep_task, _grid(), payload=schedule
        )
        b = SweepExecutor(
            ExecutorPolicy(mode="parallel", max_workers=2), registry=parallel_reg
        ).map(replay_sweep_task, _grid(), payload=schedule)
        assert a == b
        assert serial_reg.snapshot() == parallel_reg.snapshot()
        points = sum(
            row["value"]
            for row in serial_reg.snapshot()["counters"]
            if row["name"] == "sweep.points"
        )
        assert points == len(_grid())


class TestExecutionPaths:
    def test_empty_grid(self):
        executor = SweepExecutor()
        assert executor.map(double_task, []) == []
        assert executor.last_run["mode"] == "empty"

    def test_auto_short_circuits_tiny_grids(self):
        executor = SweepExecutor(ExecutorPolicy(max_workers=4))
        assert executor.map(double_task, [(1,), (2,)]) == [2, 4]
        assert executor.last_run["mode"] == "serial"

    def test_payload_reaches_serial_workers(self):
        results = SweepExecutor(ExecutorPolicy(mode="serial")).map(
            payload_echo_task, [(1,), (2,)], payload="the-payload"
        )
        assert results == [((1,), "the-payload"), ((2,), "the-payload")]
        assert worker_payload() is None  # restored after the run

    def test_unpicklable_payload_falls_back_to_serial(self):
        registry = MetricsRegistry()
        executor = SweepExecutor(
            ExecutorPolicy(mode="parallel", max_workers=2), registry=registry
        )
        unpicklable = lambda: None  # noqa: E731 - deliberately unpicklable
        results = executor.map(
            payload_echo_task, [(i,) for i in range(5)], payload=unpicklable
        )
        assert [task for task, payload in results] == [(i,) for i in range(5)]
        assert all(payload is unpicklable for _, payload in results)
        assert executor.last_run["mode"] == "serial"
        assert executor.last_run["fallback"] is True

    def test_fallback_logs_error_through_registry(self):
        registry = MetricsRegistry()
        executor = SweepExecutor(
            ExecutorPolicy(mode="parallel", max_workers=2), registry=registry
        )
        executor.map(
            payload_echo_task, [(i,) for i in range(5)], payload=lambda: None
        )
        error = executor.last_run["fallback_error"]
        assert ": " in error  # "<ExceptionType>: <message>"
        rows = registry.rows()
        assert any(
            row["name"] == "executor.fallbacks" and row["value"] == 1
            for row in rows
        )
        assert any(
            row["name"] == "executor.fallback_errors"
            and row["labels"].startswith("error=")
            and row["value"] == 1
            for row in rows
        )

    def test_clean_run_has_no_fallback_error(self):
        executor = SweepExecutor(ExecutorPolicy(mode="serial"))
        executor.map(double_task, [(1,), (2,)])
        assert "fallback_error" not in executor.last_run

    def test_parallel_mode_records_workers(self):
        executor = SweepExecutor(ExecutorPolicy(mode="parallel", max_workers=2))
        results = executor.map(double_task, [(i,) for i in range(6)])
        assert results == [0, 2, 4, 6, 8, 10]
        assert executor.last_run == {
            "mode": "parallel", "workers": 2, "fallback": False, "tasks": 6,
        }


class TestStreamingResults:
    def test_on_result_in_task_order(self):
        seen = []
        executor = SweepExecutor(ExecutorPolicy(mode="parallel", max_workers=2))
        results = executor.map(
            double_task, [(i,) for i in range(8)],
            on_result=lambda index, result: seen.append((index, result)),
        )
        assert seen == [(i, 2 * i) for i in range(8)]
        assert results == [2 * i for i in range(8)]

    def test_collect_false_returns_empty(self):
        seen = []
        executor = SweepExecutor(ExecutorPolicy(mode="serial"))
        results = executor.map(
            double_task, [(i,) for i in range(5)],
            on_result=lambda index, result: seen.append(result),
            collect=False,
        )
        assert results == []
        assert seen == [0, 2, 4, 6, 8]
        assert executor.last_run["tasks"] == 5

    def test_snapshots_merged_before_callback(self):
        registry = MetricsRegistry()
        schedule = _schedule()
        merged_at_callback = []

        def on_result(index, result):
            rows = registry.snapshot()["counters"]
            points = sum(
                row["value"] for row in rows if row["name"] == "sweep.points"
            )
            merged_at_callback.append(points)

        SweepExecutor(ExecutorPolicy(mode="serial"), registry=registry).map(
            replay_sweep_task, _grid(), payload=schedule,
            on_result=on_result, collect=False,
        )
        # By the time the callback sees task i, i+1 snapshots are merged.
        assert merged_at_callback == list(range(1, len(_grid()) + 1))

    def test_fallback_never_duplicates_callbacks(self):
        registry = MetricsRegistry()
        executor = SweepExecutor(
            ExecutorPolicy(mode="parallel", max_workers=2), registry=registry
        )
        seen = []
        executor.map(
            payload_echo_task, [(i,) for i in range(6)],
            payload=lambda: None,  # unpicklable: pool breaks, serial finishes
            on_result=lambda index, result: seen.append(index),
            collect=False,
        )
        assert executor.last_run["fallback"] is True
        assert seen == list(range(6))  # each task delivered exactly once
        assert [row["shard"] for row in executor.last_shards] == list(range(6))


class TestShardTimings:
    def test_last_shards_tagged_with_ids(self):
        registry = MetricsRegistry()
        executor = SweepExecutor(ExecutorPolicy(mode="serial"), registry=registry)
        executor.map(replay_sweep_task, _grid(), payload=_schedule())
        assert [row["shard"] for row in executor.last_shards] == list(
            range(len(_grid()))
        )
        assert all(row["elapsed_s"] >= 0 for row in executor.last_shards)

    def test_parallel_shards_keep_task_order(self):
        registry = MetricsRegistry()
        executor = SweepExecutor(
            ExecutorPolicy(mode="parallel", max_workers=2), registry=registry
        )
        executor.map(replay_sweep_task, _grid(), payload=_schedule())
        assert [row["shard"] for row in executor.last_shards] == list(
            range(len(_grid()))
        )

    def test_no_registry_means_no_shards(self):
        executor = SweepExecutor(ExecutorPolicy(mode="serial"))
        executor.map(double_task, [(1,), (2,), (3,)])
        assert executor.last_shards == []

    def test_last_shards_reset_between_runs(self):
        registry = MetricsRegistry()
        executor = SweepExecutor(ExecutorPolicy(mode="serial"), registry=registry)
        executor.map(replay_sweep_task, _grid(), payload=_schedule())
        executor.map(double_task, [])
        assert executor.last_shards == []


class TestWorkerSpanAdoption:
    def test_spans_ride_back_on_snapshots(self):
        from repro.obs.spans import SpanTracer

        registry = MetricsRegistry()
        tracer = SpanTracer(trace_id="sweep")
        executor = SweepExecutor(
            ExecutorPolicy(mode="serial"), registry=registry, spans=tracer
        )
        with tracer.span("sweep.execute"):
            executor.map(span_recording_task, [(i,) for i in range(3)])
        names = [span.name for span in tracer.finished]
        assert names.count("task.run") == 3
        assert "sweep.execute" in names
        assert all(span.trace_id == "sweep" for span in tracer.finished)
        # Worker spans parent to the span that was open at map() time.
        parent = next(s for s in tracer.finished if s.name == "sweep.execute")
        adopted = [s for s in tracer.finished if s.name == "task.run"]
        assert all(s.parent_id == parent.span_id for s in adopted)
        assert [s.attrs["x"] for s in adopted] == [0, 1, 2]


class TestReplaySweepTask:
    def test_requires_payload(self):
        with pytest.raises(ReproError):
            replay_sweep_task((0, 0.0, 5))

    def test_lossfree_point_matches_paper_metrics(self):
        from repro.core.engine import simulate
        from repro.core.metrics import collect_metrics
        from repro.exec.compiler import build_protocol
        from repro.exec.executor import _init_worker

        schedule = _schedule(n=15, d=3, packets=8)
        _init_worker(schedule)
        try:
            row = replay_sweep_task((0, 0.0, 8))
        finally:
            _init_worker(None)
        protocol = build_protocol("multi-tree", 15, 3)
        trace = simulate(protocol, protocol.slots_for_packets(8))
        paper = collect_metrics(trace, num_packets=8)
        assert row["residual"] == 0
        assert row["max_delay"] == paper.max_startup_delay
        assert row["max_buffer"] == paper.max_buffer
