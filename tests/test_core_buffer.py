"""Unit tests for repro.core.buffer.PlaybackBuffer."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.buffer import PlaybackBuffer


class TestBasics:
    def test_insert_then_consume_in_order(self):
        buf = PlaybackBuffer()
        for p in range(5):
            buf.insert(p)
        assert [buf.consume() for _ in range(5)] == [0, 1, 2, 3, 4]
        assert buf.occupancy == 0

    def test_out_of_order_insert_plays_in_order(self):
        buf = PlaybackBuffer()
        for p in (2, 0, 1):
            buf.insert(p)
        assert buf.consume() == 0
        assert buf.consume() == 1
        assert buf.consume() == 2

    def test_hiccup_on_missing_packet(self):
        buf = PlaybackBuffer()
        buf.insert(1)  # packet 0 missing
        assert buf.consume() is None
        assert buf.hiccups == 1
        buf.insert(0)
        assert buf.consume() == 0
        assert buf.consume() == 1

    def test_duplicate_insert_is_idempotent(self):
        buf = PlaybackBuffer()
        buf.insert(0)
        buf.insert(0)
        assert buf.occupancy == 1

    def test_stale_insert_ignored(self):
        buf = PlaybackBuffer()
        buf.insert(0)
        assert buf.consume() == 0
        buf.insert(0)  # already played
        assert buf.occupancy == 0

    def test_negative_packet_rejected(self):
        with pytest.raises(ValueError):
            PlaybackBuffer().insert(-1)


class TestCapacity:
    def test_capacity_enforced(self):
        buf = PlaybackBuffer(capacity=2)
        buf.insert(0)
        buf.insert(1)
        with pytest.raises(OverflowError):
            buf.insert(2)

    def test_consume_frees_capacity(self):
        buf = PlaybackBuffer(capacity=1)
        buf.insert(0)
        buf.consume()
        buf.insert(1)  # does not raise
        assert buf.occupancy == 1

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            PlaybackBuffer(capacity=0)


class TestAccounting:
    def test_peak_tracks_high_water_mark(self):
        buf = PlaybackBuffer()
        buf.insert(0)
        buf.insert(1)
        buf.insert(2)
        buf.consume()
        buf.consume()
        assert buf.peak_occupancy == 3
        assert buf.occupancy == 1

    def test_contains(self):
        buf = PlaybackBuffer()
        buf.insert(3)
        assert 3 in buf
        assert 0 not in buf

    @given(st.lists(st.integers(0, 40), max_size=60))
    def test_never_plays_out_of_order(self, inserts):
        buf = PlaybackBuffer()
        played = []
        for p in inserts:
            buf.insert(p)
            out = buf.consume()
            if out is not None:
                played.append(out)
        assert played == sorted(played)
        assert played == list(range(len(played)))
