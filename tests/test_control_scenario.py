"""The load-ramp scenario: statics violate the SLO, the control plane holds.

This is the reduced-scale version of ``benchmarks/bench_control_plane.py``
(and the CI ``control-plane-smoke`` job): same three-phase ramp, smaller
session count, same acceptance claims.
"""

from __future__ import annotations

import pytest

from repro.control import control_record, decisions_from_record
from repro.control.scenario import (
    RAMP_POLICIES,
    RAMP_SLO,
    compare_policies,
    offered_p99,
    ramp_arrival_slots,
    ramp_fleet,
    run_ramp,
)
from repro.core.errors import ReproError
from repro.reporting.ledger import RunLedger

SCALE = 0.2  # 48 sessions: smallest scale where the full story reproduces


@pytest.fixture(scope="module")
def outcomes():
    return compare_policies(scale=SCALE, seed=0)


class TestRampTrace:
    def test_trace_is_deterministic_and_sorted(self):
        slots = ramp_arrival_slots(48)
        assert slots == ramp_arrival_slots(48)
        assert list(slots) == sorted(slots)
        assert len(slots) == 48

    def test_burst_phase_is_denser_than_warmup(self):
        slots = ramp_arrival_slots(100)
        warmup, burst = slots[:25], slots[25:75]
        warmup_rate = len(warmup) / (warmup[-1] - warmup[0] + 1)
        burst_rate = len(burst) / (burst[-1] - burst[0] + 1)
        assert burst_rate > 2 * warmup_rate

    def test_too_few_sessions_rejected(self):
        with pytest.raises(ReproError):
            ramp_arrival_slots(2)


class TestRampFleet:
    def test_static_fleets_have_no_controller(self):
        for policy in ("queue", "reject", "degrade"):
            fleet = ramp_fleet(policy, scale=SCALE)
            assert fleet.controller is None
            assert fleet.policy == policy

    def test_adaptive_fleet_carries_the_control_policy(self):
        fleet = ramp_fleet("adaptive", scale=SCALE, slo=20)
        assert fleet.policy == "queue"  # the plane starts at the widest stage
        assert fleet.controller.slo_p99_delay == 20

    def test_unknown_policy_rejected(self):
        with pytest.raises(ReproError):
            ramp_fleet("lru", scale=SCALE)


class TestAcceptance:
    """The PR's acceptance claims, at CI scale."""

    def test_every_static_policy_violates_the_slo(self, outcomes):
        for policy in ("queue", "reject", "degrade"):
            outcome = outcomes[policy]
            assert not outcome.holds_slo, outcome.row()
            assert outcome.offered_p99 > RAMP_SLO

    def test_the_control_plane_holds_the_slo(self, outcomes):
        adaptive = outcomes["adaptive"]
        assert adaptive.holds_slo, adaptive.row()
        assert adaptive.offered_p99 <= RAMP_SLO

    def test_adaptive_throughput_within_ten_percent_of_best_static(
        self, outcomes
    ):
        best_static = max(
            outcomes[p].throughput for p in ("queue", "reject", "degrade")
        )
        assert outcomes["adaptive"].throughput >= 0.9 * best_static

    def test_adaptive_run_actually_decided_something(self, outcomes):
        decisions = outcomes["adaptive"].decisions
        assert decisions, "the control plane never acted"
        assert any(d.action == "retune" for d in decisions)

    def test_statics_make_no_decisions(self, outcomes):
        for policy in ("queue", "reject", "degrade"):
            assert outcomes[policy].decisions == ()

    def test_offered_p99_charges_rejects(self, outcomes):
        # The reject run's offered-p99 must reflect the penalty charge, not
        # just the happy admitted sessions.
        rejected = outcomes["reject"]
        assert rejected.rejected > 0
        assert rejected.offered_p99 > rejected.startup_p99

    def test_every_offered_session_is_scored(self, outcomes):
        for policy in RAMP_POLICIES:
            result = outcomes[policy].result
            assert len(result.decisions) == round(240 * SCALE)

    def test_row_shape(self, outcomes):
        row = outcomes["adaptive"].row()
        assert set(row) == {
            "policy", "offered_p99", "startup_p99", "throughput",
            "rejected", "holds_slo", "decisions",
        }


class TestDeterminismAndReplay:
    def test_ramp_outcome_is_deterministic(self, outcomes):
        again = run_ramp("adaptive", scale=SCALE, seed=0)
        baseline = outcomes["adaptive"]
        assert again.offered_p99 == baseline.offered_p99
        assert again.throughput == baseline.throughput
        assert [d.to_dict() for d in again.decisions] == [
            d.to_dict() for d in baseline.decisions
        ]

    def test_decision_log_round_trips_through_the_ledger(
        self, outcomes, tmp_path
    ):
        adaptive = outcomes["adaptive"]
        ledger = RunLedger(tmp_path / "ledger.jsonl")
        ledger.append(control_record(
            adaptive.decisions,
            epochs=adaptive.result.control_epochs,
            policy={"slo_p99_delay": adaptive.slo},
        ))
        (record,) = [
            r for r in ledger.records() if r.get("record") == "control"
        ]
        assert decisions_from_record(record) == list(adaptive.decisions)
        assert len(record["epochs"]) == len(adaptive.result.control_epochs)

    def test_offered_p99_requires_exact_aggregation(self, outcomes):
        # Guard the scoring contract: the ramp keeps per-session SLOs.
        result = outcomes["queue"].result
        assert result.report.sessions  # aggregation="exact" retained them
        assert offered_p99(result, slo=RAMP_SLO) >= result.report.startup_p99
