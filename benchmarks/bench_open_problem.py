"""The paper's closing open problem, quantified.

Section 4 asks whether an algorithm exists achieving, for arbitrary ``N``,
O(log N) worst-case delay AND O(1) buffers AND O(log N) neighbors
simultaneously.  The cascade gets the last two but pays O(log^2 N) delay.
This bench measures the actual gap: the cascade's worst delay divided by
``log2 N`` grows without bound (so the cascade is *not* the answer), while
for special ``N`` the single cube sits exactly on the target — the open
problem is precisely about closing that gap for every other ``N``.
"""

from __future__ import annotations

import math

from conftest import report

from repro.hypercube.cascade import expected_worst_delay
from repro.hypercube.cube import is_special_population
from repro.reporting.tables import format_table


def run():
    rows = []
    ratios = []
    for exponent in range(3, 17):
        # The worst populations make the greedy decomposition a full
        # descending chain of cubes k, k-1, ..., 1:
        # N = sum_{i=1..k} (2^i - 1) = 2^{k+1} - 2 - k.
        n = (1 << (exponent + 1)) - 2 - exponent
        delay = expected_worst_delay(n)
        ratio = delay / math.log2(n)
        ratios.append(ratio)
        rows.append((n, delay, round(math.log2(n), 1), round(ratio, 2)))
    # Special N sits exactly on the open problem's target.
    special_rows = []
    for exponent in (5, 10, 16):
        n = (1 << exponent) - 1
        assert is_special_population(n)
        delay = expected_worst_delay(n)
        special_rows.append((n, delay, round(delay / math.log2(n), 2)))
    return rows, ratios, special_rows


def test_open_problem_gap(benchmark):
    rows, ratios, special_rows = benchmark.pedantic(run, rounds=1, iterations=1)
    # The delay/log N ratio grows: the cascade is super-logarithmic.
    assert ratios[-1] > 2 * ratios[0]
    assert all(b >= a - 1e-9 for a, b in zip(ratios, ratios[2:]))
    # Special N achieves ratio ~1: the target the open problem asks for.
    assert all(r[2] <= 1.3 for r in special_rows)  # (k+1)/k -> 1
    text = "\n".join(
        [
            format_table(
                ["N (chain worst case)", "cascade worst delay", "log2 N",
                 "delay / log2 N"],
                rows,
                title=(
                    "Open problem (paper §4): the cascade's delay is "
                    "super-logarithmic for arbitrary N"
                ),
            ),
            "",
            format_table(
                ["N = 2^k - 1", "delay", "delay / log2 N"],
                special_rows,
                title="…while special N already meets the O(log N) target:",
            ),
        ]
    )
    report("open_problem_gap", text)
