"""Parameter sweeps used by the benchmark harness."""

from __future__ import annotations

from collections.abc import Iterator

from repro.core.errors import ConstructionError

__all__ = [
    "figure4_populations",
    "degree_sweep",
    "complete_tree_populations",
    "special_hypercube_populations",
    "log_spaced_populations",
]


def figure4_populations(
    max_nodes: int = 2000, *, step: int = 50, start: int = 10
) -> list[int]:
    """The Figure 4 x-axis: cluster sizes from ``start`` to ``max_nodes``."""
    if start < 2:
        raise ConstructionError(f"start must be >= 2, got {start}")
    if step < 1:
        raise ConstructionError(f"step must be >= 1, got {step}")
    return list(range(start, max_nodes + 1, step))


def degree_sweep() -> list[int]:
    """The Figure 4 degrees: 2 through 5."""
    return [2, 3, 4, 5]


def complete_tree_populations(degree: int, *, max_nodes: int = 100_000) -> list[int]:
    """Populations with complete trees: ``N = d + d^2 + ... + d^h``.

    These satisfy the assumptions of Theorems 2-3 exactly.

    Examples:
        >>> complete_tree_populations(3, max_nodes=130)
        [3, 12, 39, 120]
    """
    if degree < 2:
        raise ConstructionError(f"degree must be >= 2, got {degree}")
    out: list[int] = []
    total = 0
    power = degree
    while total + power <= max_nodes:
        total += power
        out.append(total)
        power *= degree
    return out


def special_hypercube_populations(max_nodes: int = 100_000) -> list[int]:
    """Populations ``N = 2^k - 1`` (Proposition 1's special case)."""
    return [(1 << k) - 1 for k in range(1, max_nodes.bit_length() + 1) if (1 << k) - 1 <= max_nodes]


def log_spaced_populations(
    min_nodes: int, max_nodes: int, *, points: int = 12
) -> list[int]:
    """Roughly geometrically spaced populations for scaling-shape checks."""
    if min_nodes < 1 or max_nodes < min_nodes:
        raise ConstructionError(
            f"invalid range [{min_nodes}, {max_nodes}] for population sweep"
        )
    if points < 2:
        raise ConstructionError(f"need at least 2 points, got {points}")
    ratio = (max_nodes / min_nodes) ** (1 / (points - 1))
    seen: list[int] = []
    value = float(min_nodes)
    for _ in range(points):
        n = round(value)
        if not seen or n > seen[-1]:
            seen.append(n)
        value *= ratio
    if seen[-1] != max_nodes:
        seen.append(max_nodes)
    return seen


def iter_configurations(populations: list[int], degrees: list[int]) -> Iterator[tuple[int, int]]:
    """Cartesian sweep, skipping configurations with more trees than nodes."""
    for n in populations:
        for d in degrees:
            yield n, d
