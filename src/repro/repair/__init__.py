"""Loss-repair subsystem: making the paper's schedules loss-tolerant.

The paper assumes a loss-free network, and the repository's fault-injection
experiments measured the consequence: with zero receive slack a single
dropped transmission is *permanent* in both schemes
(``tests/test_faults.py``).  This subpackage closes that gap with the two
canonical repair designs from the related work, built **on top of** the
paper's schedules rather than into them:

* :mod:`repro.repair.slack` — provision spare capacity: thin the stream to
  rate ``1 - ε`` (dedicated repair slots) or grant receivers ``1 + c``
  receive capacity, wrapping any
  :class:`~repro.core.protocol.StreamingProtocol` unchanged;
* :mod:`repro.repair.retransmit` — ARQ: NACK-driven retransmission from the
  nearest upstream holder into the provisioned slack (after Joshi, Kochman &
  Wornell);
* :mod:`repro.repair.parity` — FEC: XOR parity every ``g`` data packets so
  single losses per group repair locally with no feedback (after Badr, Lui &
  Khisti);
* :mod:`repro.repair.session` — one-call experiments reporting the measured
  delay/buffer price of repair against the paper's loss-free operating point.

Quickstart::

    from repro.repair import repair_experiment
    point = repair_experiment("multi-tree", 15, 3, loss_rate=0.01,
                              mode="retransmit", epsilon=0.05)
    print(point.metrics.residual_pairs)  # 0: every loss repaired
    print(point.row())

(Or, through the unified facade: ``repro.run(ExperimentSpec(kind="repair",
...))``.)
"""

from repro.repair.parity import ParityDecode, ParityScheme, Recovery
from repro.repair.retransmit import (
    GapRecord,
    RepairEvent,
    RetransmissionCoordinator,
    make_repairable,
)
from repro.repair.session import (
    REPAIR_MODES,
    REPAIR_SCHEMES,
    RepairRunResult,
    default_grace,
    make_lossy_protocol,
    repair_experiment,
)
from repro.repair.slack import CAPACITY, THIN, SlackPolicy, SlackProvisioner

__all__ = [
    "CAPACITY",
    "GapRecord",
    "ParityDecode",
    "ParityScheme",
    "REPAIR_MODES",
    "REPAIR_SCHEMES",
    "Recovery",
    "RepairEvent",
    "RepairRunResult",
    "RetransmissionCoordinator",
    "SlackPolicy",
    "SlackProvisioner",
    "THIN",
    "default_grace",
    "make_lossy_protocol",
    "make_repairable",
    "repair_experiment",
]
