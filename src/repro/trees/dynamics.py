"""Node churn for the multi-tree scheme (paper appendix).

The appendix gives addition/deletion algorithms that maintain the forest's
invariants "on-the-fly" by swapping nodes with *all-leaf* nodes (members of the
``G_d`` tail, which occupy the last positions of every tree), plus "lazy"
variants that defer the tail bookkeeping until the next event to save swaps.

Representation.  A :class:`DynamicForest` keeps the ``d`` breadth-first layouts
explicitly, padded so every tree always has ``M = d * (I + 1)`` positions with
interior positions ``1..I``.  Dummy placeholders carry negative ids so they can
never collide with real node ids.  The maintained invariants are exactly the
static construction's:

* every layout is a permutation of the same id population;
* no id is interior in more than one tree;
* no id occupies two positions congruent modulo ``d`` (schedule safety);
* dummies occupy only leaf positions;
* (eager mode only) tightness: ``I = ceil(N / d) - 1`` for the live count ``N``.

All repairs are built from two primitives that provably preserve the
congruence invariant: *whole-id swaps* (two ids exchange their positions in
every tree) and *same-residue swaps* (two occupants of positions congruent
modulo ``d`` exchange places within one tree).  Operation costs match the
appendix:

* **addition** — 0 swaps while a dummy slot exists (``d`` does not divide the
  live population); up to ``d`` swaps when the trees must grow a level.
* **deletion** — 0 swaps for an all-leaf node away from the tightness
  boundary; ``d`` swaps to first exchange an interior node with a real
  all-leaf node; up to ``d^2`` further swaps when the trees shrink a level.
* **lazy variants** — skip shrinking entirely and grow only when unavoidable.
  The paper motivates laziness with the delete-then-add sequence, where eager
  maintenance shrinks and immediately regrows a tree level (up to ``d^2 + d``
  swaps in the paper's unpadded bookkeeping).  In this padded representation
  the tail restoration is usually swap-free, so the lazy win shows up as the
  avoided grow/shrink *events* (each of which relocates tail nodes and risks
  hiccups) rather than raw swap counts; :meth:`DynamicForest.compact`
  performs the deferred tightening on demand.

Every swap relocates nodes mid-stream, so swapped nodes may miss or re-wait
for packets; the per-operation ``touched`` sets in :class:`ChurnReport` bound
the paper's "up to d^2 nodes may suffer from hiccups" claim and feed the churn
ablation bench.
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import mean

from repro.core.errors import ConstructionError
from repro.trees.forest import MultiTreeForest
from repro.trees.schedule import first_arrival_slots
from repro.trees.tree import StreamTree

__all__ = ["ChurnReport", "DynamicForest"]


@dataclass(frozen=True, slots=True)
class ChurnReport:
    """Outcome of one churn operation.

    Attributes:
        operation: ``"add"``, ``"delete"``, or ``"compact"``.
        node: the node added/removed (0 for compact).
        swaps: position swaps performed (the paper's maintenance cost metric).
        touched: real nodes whose position changed in at least one tree —
            the candidates for playback hiccups.
        grew: whether the trees gained a level of positions.
        shrank: whether the trees dropped a level of positions.
    """

    operation: str
    node: int
    swaps: int
    touched: frozenset[int]
    grew: bool = False
    shrank: bool = False


class DynamicForest:
    """A multi-tree forest supporting node addition and deletion under churn.

    Args:
        num_nodes: initial receiver count (built with the static construction).
        degree: tree degree ``d``.
        construction: ``"structured"`` or ``"greedy"`` for the initial build.
        lazy: use the appendix's lazy maintenance (defer shrinking).
    """

    def __init__(
        self,
        num_nodes: int,
        degree: int,
        construction: str = "structured",
        *,
        lazy: bool = False,
    ) -> None:
        forest = MultiTreeForest.construct(num_nodes, degree, construction)
        self.degree = degree
        self.lazy = lazy
        self.interior = forest.partition.interior_per_tree
        # Real ids keep their 1..N labels; padding dummies become -1, -2, ...
        dummy_map = {
            dummy: -(j + 1) for j, dummy in enumerate(forest.partition.dummy_ids)
        }
        self._layouts: list[list[int]] = [
            [dummy_map.get(node, node) for node in tree.layout] for tree in forest.trees
        ]
        self.real_ids: set[int] = set(range(1, num_nodes + 1))
        self._next_real = num_nodes + 1
        self._next_dummy = -(len(dummy_map) + 1)
        self.total_swaps = 0
        self.history: list[ChurnReport] = []

    # ------------------------------------------------------------------ state
    @property
    def num_nodes(self) -> int:
        return len(self.real_ids)

    @property
    def padded_size(self) -> int:
        return len(self._layouts[0])

    def is_dummy(self, node: int) -> bool:
        return node < 0

    def layouts(self) -> list[tuple[int, ...]]:
        return [tuple(layout) for layout in self._layouts]

    def trees(self) -> list[StreamTree]:
        """Snapshot the current layouts as immutable :class:`StreamTree` objects."""
        return [
            StreamTree(k, self.degree, layout, self.interior)
            for k, layout in enumerate(self._layouts)
        ]

    def position_of(self, node: int, tree_index: int) -> int:
        try:
            return self._layouts[tree_index].index(node) + 1
        except ValueError:
            raise ConstructionError(f"node {node} not in tree T_{tree_index}") from None

    def positions_of(self, node: int) -> list[int]:
        return [self.position_of(node, k) for k in range(self.degree)]

    def is_all_leaf(self, node: int) -> bool:
        return all(p > self.interior for p in self.positions_of(node))

    def _real_all_leaf_nodes(self) -> list[int]:
        """Real ids that are leaves in every tree, ordered by T_0 position."""
        interior_somewhere = {
            node for layout in self._layouts for node in layout[: self.interior]
        }
        layout0 = self._layouts[0]
        return [
            node
            for node in layout0[self.interior :]
            if node >= 0 and node not in interior_somewhere
        ]

    def _dummy_ids(self) -> list[int]:
        return sorted((n for n in self._layouts[0] if n < 0), reverse=True)

    def _fresh_dummies(self, count: int) -> list[int]:
        ids = [self._next_dummy - j for j in range(count)]
        self._next_dummy -= count
        return ids

    # ------------------------------------------------------------- primitives
    def _swap_positions(self, tree_index: int, pos_a: int, pos_b: int) -> None:
        """Exchange the occupants of two same-residue positions in one tree."""
        if pos_a == pos_b:
            return
        if pos_a % self.degree != pos_b % self.degree:
            raise ConstructionError(
                f"in-tree swap of positions {pos_a} and {pos_b} would break the "
                f"mod-{self.degree} congruence invariant"
            )
        layout = self._layouts[tree_index]
        layout[pos_a - 1], layout[pos_b - 1] = layout[pos_b - 1], layout[pos_a - 1]
        self.total_swaps += 1

    def _swap_ids_everywhere(self, a: int, b: int) -> int:
        """Exchange two ids' positions in every tree (``d`` swaps)."""
        if a == b:
            return 0
        count = 0
        for layout in self._layouts:
            ia = layout.index(a)
            ib = layout.index(b)
            layout[ia], layout[ib] = layout[ib], layout[ia]
            count += 1
        self.total_swaps += count
        return count

    # --------------------------------------------------------------- addition
    def add_node(self) -> tuple[int, ChurnReport]:
        """Add a new node; returns ``(node_id, report)``.

        The new node takes over an existing dummy's slots (0 swaps); when no
        dummy slot is free the trees first grow one interior level.
        """
        node = self._next_real
        self._next_real += 1
        swaps = 0
        touched: set[int] = set()
        grew = False

        dummies = self._dummy_ids()
        if not dummies:
            swaps += self._grow(touched)
            grew = True
            dummies = self._dummy_ids()

        # A dummy's d slots are leaves in pairwise non-congruent positions by
        # the invariant, so the new node inherits them swap-free.
        dummy = dummies[0]
        for layout in self._layouts:
            layout[layout.index(dummy)] = node
        self.real_ids.add(node)
        report = ChurnReport("add", node, swaps, frozenset(touched), grew=grew)
        self.history.append(report)
        return node, report

    def _grow(self, touched: set[int]) -> int:
        """Promote position ``I + 1`` to interior and append ``d`` leaf slots.

        Appendix Step 1 ('Make room for growth'): in each tree the occupant of
        the new interior position must be a real node that is a leaf in every
        other tree and not promoted by another tree; otherwise it is exchanged
        (same-residue, in-tree) with an eligible all-leaf node.
        """
        d = self.degree
        new_interior_pos = self.interior + 1
        residue = new_interior_pos % d
        swaps = 0
        promoted: set[int] = set()
        for k in range(d):
            layout = self._layouts[k]
            occupant = layout[new_interior_pos - 1]
            eligible = (
                occupant >= 0
                and occupant not in promoted
                and self._leaf_everywhere_but(occupant, k)
            )
            if not eligible:
                donor_pos = self._find_promotable(k, residue, promoted, new_interior_pos)
                self._swap_positions(k, new_interior_pos, donor_pos)
                swaps += 1
                if occupant >= 0:
                    touched.add(occupant)
                occupant = layout[new_interior_pos - 1]
                touched.add(occupant)
            promoted.add(occupant)
        # Append d fresh leaf slots to every tree.  The same d dummy ids are
        # appended everywhere, rotated by the tree index so each dummy's new
        # positions are pairwise non-congruent across trees.
        new_dummies = self._fresh_dummies(d)
        for k, layout in enumerate(self._layouts):
            layout.extend(new_dummies[(j - k) % d] for j in range(d))
        self.interior += 1
        return swaps

    def _find_promotable(
        self, tree_index: int, residue: int, promoted: set[int], skip_pos: int
    ) -> int:
        """Position (in ``tree_index``) of a promotable all-leaf donor.

        The donor must be real, a leaf in every tree, not already promoted,
        and sit at a position sharing ``residue`` so the in-tree swap is safe.
        """
        layout = self._layouts[tree_index]
        for position in range(self.padded_size, self.interior, -1):
            if position == skip_pos or position % self.degree != residue:
                continue
            candidate = layout[position - 1]
            if candidate < 0 or candidate in promoted:
                continue
            if self.is_all_leaf(candidate):
                return position
        raise ConstructionError(
            f"no promotable all-leaf node of residue {residue} in tree T_{tree_index}"
        )

    def _leaf_everywhere_but(self, node: int, tree_index: int) -> bool:
        """True if ``node`` is a leaf in every tree other than ``tree_index``."""
        for k in range(self.degree):
            if k != tree_index and self.position_of(node, k) <= self.interior:
                return False
        return True

    # --------------------------------------------------------------- deletion
    def delete_node(self, node: int) -> ChurnReport:
        """Remove a node, repairing the invariants per the appendix algorithm."""
        if node not in self.real_ids:
            raise ConstructionError(f"node {node} is not a live real node")
        if self.num_nodes == 1:
            raise ConstructionError("cannot delete the last remaining node")
        swaps = 0
        touched: set[int] = set()
        shrank = False

        # Step 1, 'Find replacement': an interior node is first exchanged with
        # a real all-leaf node so only an all-leaf slot is vacated.
        if not self.is_all_leaf(node):
            candidates = self._real_all_leaf_nodes()
            if not candidates:
                # Possible only in lazy mode after unshrunk deletions; force
                # one level of compaction to free an all-leaf node.
                swaps += self._shrink(touched)
                shrank = True
                candidates = self._real_all_leaf_nodes()
            replacement = candidates[-1]  # the paper's "last all-leaf node in T_0"
            swaps += self._swap_ids_everywhere(node, replacement)
            touched.add(replacement)

        # Step 3, 'Remove node': the vacated slots become a dummy.
        dummy = self._fresh_dummies(1)[0]
        for layout in self._layouts:
            layout[layout.index(node)] = dummy
        self.real_ids.remove(node)

        # Step 2, 'Restore property' (eager only): shrink when tightness breaks.
        if not self.lazy:
            while self._should_shrink():
                swaps += self._shrink(touched)
                shrank = True

        report = ChurnReport("delete", node, swaps, frozenset(touched), shrank=shrank)
        self.history.append(report)
        return report

    def _should_shrink(self) -> bool:
        tight_interior = -(-self.num_nodes // self.degree) - 1  # ceil(N/d) - 1
        return self.interior > tight_interior

    def _shrink(self, touched: set[int]) -> int:
        """Drop the last level of positions (up to ``d^2`` same-residue swaps).

        Picks ``d`` dummy ids to eliminate.  Within each tree, each of its
        ``d`` tail positions is swapped (same residue) with the position of
        the kill-set dummy holding that residue; since a dummy's ``d``
        positions cover all residues, each tail position finds exactly one
        partner.  Afterwards every tree's tail holds exactly the kill set and
        the level can be truncated consistently across trees.
        """
        d = self.degree
        dummies = self._dummy_ids()
        if len(dummies) < d:
            raise ConstructionError(
                f"shrink needs {d} dummy ids, only {len(dummies)} available"
            )
        kill = set(dummies[:d])
        swaps = 0
        tail_range = range(self.padded_size - d + 1, self.padded_size + 1)
        for k, layout in enumerate(self._layouts):
            # Residue -> position of the kill dummy with that residue in T_k.
            kill_pos_by_residue = {
                pos % d: pos
                for pos in range(1, self.padded_size + 1)
                if layout[pos - 1] in kill
            }
            for tail_pos in tail_range:
                occupant = layout[tail_pos - 1]
                if occupant in kill:
                    continue
                partner = kill_pos_by_residue[tail_pos % d]
                self._swap_positions(k, tail_pos, partner)
                swaps += 1
                if occupant >= 0:
                    touched.add(occupant)
                kill_pos_by_residue[tail_pos % d] = tail_pos
        for layout in self._layouts:
            removed = layout[-d:]
            if any(node not in kill for node in removed):
                raise ConstructionError("shrink failed to clear the tail level")
            del layout[-d:]
        self.interior -= 1
        return swaps

    # ------------------------------------------------------------- compaction
    def compact(self) -> ChurnReport:
        """Perform deferred tightening (lazy mode); no-op when already tight."""
        swaps = 0
        touched: set[int] = set()
        shrank = False
        while self._should_shrink():
            swaps += self._shrink(touched)
            shrank = True
        report = ChurnReport("compact", 0, swaps, frozenset(touched), shrank=shrank)
        self.history.append(report)
        return report

    # -------------------------------------------------------------- integrity
    def verify(self) -> None:
        """Check all structural invariants; raises ``ConstructionError`` on failure."""
        d = self.degree
        population = set(self._layouts[0])
        if self.real_ids - population:
            raise ConstructionError("live ids missing from layouts")
        for k, layout in enumerate(self._layouts):
            if len(layout) != d * (self.interior + 1):
                raise ConstructionError(f"T_{k} has inconsistent size {len(layout)}")
            if len(set(layout)) != len(layout):
                raise ConstructionError(f"T_{k} layout contains duplicates")
            if set(layout) != population:
                raise ConstructionError(f"T_{k} population differs from T_0")
        interior_owner: dict[int, int] = {}
        for k, layout in enumerate(self._layouts):
            for node in layout[: self.interior]:
                if self.is_dummy(node):
                    raise ConstructionError(f"dummy {node} interior in T_{k}")
                if node in interior_owner:
                    raise ConstructionError(
                        f"node {node} interior in T_{interior_owner[node]} and T_{k}"
                    )
                interior_owner[node] = k
        for node in population:
            residues = {self.position_of(node, k) % d for k in range(d)}
            if len(residues) != d:
                raise ConstructionError(
                    f"node {node} has congruent positions mod {d}: schedule collision"
                )
        if not self.lazy and self._should_shrink():
            raise ConstructionError("eager forest is not tight")

    # ---------------------------------------------------------------- metrics
    def playback_delays(self) -> dict[int, int]:
        """Current ``a(i)`` for every live real node (paper start rule)."""
        delays = dict.fromkeys(self.real_ids, 0)
        for tree in self.trees():
            first = first_arrival_slots(tree)
            for node in self.real_ids:
                arrival = first[tree.position_of(node)] + 1
                if arrival > delays[node]:
                    delays[node] = arrival
        return delays

    def worst_case_delay(self) -> int:
        return max(self.playback_delays().values())

    def average_delay(self) -> float:
        return mean(self.playback_delays().values())
