"""Tests for tumbling-window time series (repro.obs.timeseries)."""

from __future__ import annotations

import json

import pytest

from repro.obs.timeseries import TimeSeries


class TestValidation:
    def test_bad_window(self):
        with pytest.raises(ValueError):
            TimeSeries(0)

    def test_bad_relative_error(self):
        with pytest.raises(ValueError):
            TimeSeries(4, relative_error=1.0)

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            TimeSeries(4).count("x", -1)


class TestWindowing:
    def test_counts_bucket_by_window(self):
        ts = TimeSeries(window=4)
        for t in (0, 1, 3):
            ts.count("arrivals", t)
        ts.count("arrivals", 4, amount=2)
        ts.count("arrivals", 11)
        assert ts.windows() == [0, 1, 2]
        assert ts.series("arrivals") == [(0, 3.0), (1, 2.0), (2, 1.0)]
        assert ts.total("arrivals") == 6.0

    def test_series_dense_over_gap(self):
        ts = TimeSeries(window=2)
        ts.count("x", 0)
        ts.count("x", 9)
        assert ts.series("x") == [(0, 1.0), (1, 0.0), (2, 0.0), (3, 0.0), (4, 1.0)]

    def test_rate_divides_by_window(self):
        ts = TimeSeries(window=8)
        ts.count("done", 3, amount=4)
        assert ts.rate("done") == [(0, 0.5)]

    def test_gauge_last_write_wins(self):
        ts = TimeSeries(window=4)
        ts.gauge("load", 0, 0.25)
        ts.gauge("load", 3, 0.75)
        ts.gauge("load", 5, 0.5)
        assert ts.last("load") == [(0, 0.75), (1, 0.5)]

    def test_sketch_quantiles_per_window(self):
        ts = TimeSeries(window=4, relative_error=0)
        for v in (1, 2, 3, 4):
            ts.observe("delay", 0, v)
        ts.observe("delay", 6, 40)
        quantiles = ts.quantile("delay", 50)
        assert quantiles == [(0, 2), (1, 40)]

    def test_empty_series(self):
        ts = TimeSeries()
        assert ts.windows() == []
        assert ts.series("missing") == []
        assert ts.total("missing") == 0.0
        assert ts.num_windows == 0


class TestRendering:
    def test_rows_cover_every_kind(self):
        ts = TimeSeries(window=4)
        ts.count("admitted", 0, amount=3)
        ts.gauge("goodput", 1, 0.9)
        ts.observe("delay", 2, 7)
        rows = ts.rows()
        kinds = {(row["series"], row["kind"]) for row in rows}
        assert kinds == {
            ("admitted", "counter"), ("goodput", "gauge"), ("delay", "sketch"),
        }
        counter = next(r for r in rows if r["kind"] == "counter")
        assert counter["value"] == 3.0
        assert counter["rate"] == pytest.approx(0.75)
        assert counter["start_slot"] == 0
        sketch = next(r for r in rows if r["kind"] == "sketch")
        assert sketch["count"] == 1
        assert sketch["p50"] == 7

    def test_to_dict_is_json_ready(self):
        ts = TimeSeries(window=2)
        ts.count("a", 0)
        ts.gauge("g", 1, 4.5)
        ts.observe("s", 3, 9)
        payload = json.loads(json.dumps(ts.to_dict()))
        assert payload["window"] == 2
        assert payload["windows"]["0"]["counters"] == {"a": 1.0}
        assert payload["windows"]["1"]["sketches"]["s"]["count"] == 1
