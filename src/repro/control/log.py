"""Decision log: control-plane actions as ledger records.

The acceptance bar for the control plane is *replayability*: a run's
decisions must be reconstructible from its ledger record alone.  The
helpers here are the two directions of that round-trip —
:func:`control_record` serializes a decision sequence into one
append-only :class:`~repro.reporting.ledger.RunLedger` record, and
:func:`decisions_from_record` rebuilds the exact
:class:`~repro.control.policy.ControlDecision` objects from it.  Because
the controllers are deterministic in ``(FleetSpec, seed)``, re-running the
spec and replaying the log must agree decision-for-decision; the CI
``control-plane-smoke`` job asserts exactly that.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from repro.control.policy import ControlDecision
from repro.core.errors import ReproError

__all__ = ["CONTROL_RECORD", "control_record", "decisions_from_record"]

#: ``record`` tag distinguishing decision logs from ``run``/``bench`` lines.
CONTROL_RECORD = "control"


def control_record(
    decisions: Iterable[ControlDecision],
    *,
    epochs: Sequence[dict[str, Any]] = (),
    policy: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """One JSON-safe ledger record holding a run's full decision log.

    Args:
        decisions: the decisions the control plane made, in order.
        epochs: optional per-epoch observation rows (p99, admission tallies)
            for side-by-side reading with the decisions.
        policy: optional JSON-safe policy summary (setpoint, band, epoch
            size) so the record is self-contained.
    """
    record: dict[str, Any] = {
        "record": CONTROL_RECORD,
        "decisions": [decision.to_dict() for decision in decisions],
    }
    if epochs:
        record["epochs"] = [dict(row) for row in epochs]
    if policy is not None:
        record["policy"] = dict(policy)
    return record


def decisions_from_record(record: dict[str, Any]) -> list[ControlDecision]:
    """Rebuild the decision sequence from a :func:`control_record` line.

    Raises :class:`~repro.core.errors.ReproError` when the record is not a
    control record; individual decisions re-validate through
    :meth:`ControlDecision.from_dict`, so a tampered log fails loudly
    rather than replaying wrong.
    """
    if record.get("record") != CONTROL_RECORD:
        raise ReproError(
            f"not a control record: record={record.get('record')!r}"
        )
    payload = record.get("decisions", [])
    if not isinstance(payload, list):
        raise ReproError("control record 'decisions' must be a list")
    return [ControlDecision.from_dict(entry) for entry in payload]
