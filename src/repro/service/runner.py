"""Fleet execution: run every admitted session, sharded across processes.

:class:`FleetRunner` turns a :class:`~repro.service.spec.FleetSpec` into a
:class:`~repro.service.slo.FleetSLOReport` in four steps:

1. **resolve** the scenario into concrete sessions (arrival slots, kinds,
   seeds, churn draws);
2. **admit** them through :class:`~repro.service.admission.SessionManager`,
   compiling each admitted configuration's schedule through the shared
   content-addressed :class:`~repro.exec.cache.ScheduleCache` to learn its
   true horizon — identical ``(scheme, N, d, ...)`` configs compile once per
   fleet, not once per session (the amortization the acceptance benchmark
   measures);
3. **execute** admitted sessions with the :class:`~repro.exec.SweepExecutor`
   process pool — the token-indexed schedule dict ships once per worker as
   the pool payload.  Batch-first since v2.0: sessions sharing a
   ``(schedule token, drop_rate, packets, horizon)`` coordinate group into
   **units** scored by one vectorized kernel pass each
   (:func:`~repro.exec.replay_batch`; the 0.992 cache hit rate means almost
   every session lands in a large unit), while ABR sessions — and fleets
   with ``FleetSpec(execution="scalar")`` — replay one session per task.
   Every session's loss mask is deterministic in its own seed, so results
   are identical batched or scalar, on any worker count, and per-worker
   metric snapshots merge back into the caller's registry;
4. **aggregate** per-session SLOs and admission decisions into the fleet
   report (exact pooled percentiles, reject rate, cache hit-rate).

Aggregation is **streaming**: each session SLO folds into a
:class:`~repro.service.slo.FleetAggregator` through the executor's
``on_result`` callback the moment its shard completes — with
``FleetSpec.aggregation="sketch"`` nothing per-session is ever
materialized, which is what lets ``bench_fleet_scale.py`` run 10k+
sessions in bounded memory.  ``FleetSpec.run_until_converged`` executes
admitted sessions in batches and stops early once the tracked SLO
quantile's confidence interval is narrow enough
(:mod:`repro.obs.convergence`) — the open-loop steady-state mode.  A
:class:`FleetTelemetry` bundle adds tumbling-window time series keyed by
arrival slot and pipeline spans (compile/admit/execute/aggregate plus
per-session worker spans) exportable as a Chrome trace.

Everything is deterministic in ``FleetSpec.seed`` regardless of worker count.
"""

from __future__ import annotations

from collections import Counter
from contextlib import nullcontext
from dataclasses import dataclass, replace
from typing import Any, Callable, ContextManager

from repro.exec.cache import ScheduleCache
from repro.exec.compiler import compile_schedule
from repro.exec.batch import replay_batch
from repro.exec.executor import ExecutorPolicy, SweepExecutor, worker_payload
from repro.exec.replay import bernoulli_mask, replay_arrivals
from repro.obs.convergence import ConvergenceDetector, ConvergenceState
from repro.obs.events import EventTracer
from repro.obs.names import (
    FLEET_ABR_SESSIONS,
    FLEET_CACHE_HIT_RATE,
    FLEET_GOODPUT,
    FLEET_QUEUE_WAIT,
    FLEET_REBUFFER_RATIO,
    FLEET_SESSIONS_COMPLETED,
    FLEET_SESSIONS_REPLAYED,
    FLEET_STARTUP_DELAY,
)
from repro.obs.registry import MetricsRegistry, active_registry, use_registry
from repro.obs.sketch import DEFAULT_RELATIVE_ERROR
from repro.obs.spans import SpanTracer, worker_span
from repro.obs.timeseries import TimeSeries
from repro.service.admission import AdmissionDecision, SessionManager
from repro.service.slo import (
    FleetAggregator,
    FleetSLOReport,
    SessionSLO,
    pooled_percentile,
    score_session,
    score_batch_sessions,
)
from repro.service.spec import FleetSpec, ResolvedSession, SessionSpec

__all__ = [
    "FleetRunner",
    "FleetRunResult",
    "FleetTelemetry",
    "fleet_session_task",
    "fleet_unit_task",
]


def fleet_session_task(task: tuple[Any, ...]) -> SessionSLO:
    """Executor worker: replay one admitted session and score its SLO.

    Task tuple: ``(session_id, label, status, token, seed, drop_rate,
    num_packets, wait_slots, horizon, abr_profile)``.  The token-indexed
    schedule dict arrives via :func:`~repro.exec.executor.worker_payload`;
    the loss mask is deterministic in the session seed, so results do not
    depend on which worker (or how many) ran the session.

    When ``abr_profile`` is set, the worker additionally plays the session
    through a deterministic ABR playback loop (one chunk per measured
    packet) against the named bandwidth profile, seeded by the session seed,
    and attaches the resulting QoE metrics to the SLO.
    """
    (
        session_id, label, status, token, seed,
        drop_rate, num_packets, wait_slots, horizon, abr_profile,
    ) = task
    with worker_span("session.replay", session=session_id, label=label):
        schedule = worker_payload()[token]
        mask = bernoulli_mask(schedule, drop_rate, seed)
        arrivals = replay_arrivals(schedule, num_slots=horizon, drop_mask=mask)
        slo = score_session(
            arrivals,
            session_id=session_id,
            label=label,
            num_packets=num_packets,
            num_slots=horizon,
            wait_slots=wait_slots,
            status=status,
        )
    registry = active_registry()
    if abr_profile is not None:
        from dataclasses import replace

        from repro.abr import AbrSessionSpec, build_profile, collect_qoe, run_session

        abr_spec = AbrSessionSpec(num_chunks=num_packets)
        trace = build_profile(
            abr_profile,
            max(64, num_packets * abr_spec.chunk_slots),
            seed=seed,
        )
        qoe = collect_qoe(run_session(abr_spec, trace))
        slo = replace(slo, qoe=qoe.to_dict())
        registry.counter(FLEET_ABR_SESSIONS, tier=qoe.tier).inc()
    registry.counter(FLEET_SESSIONS_REPLAYED, label=label).inc()
    registry.histogram(FLEET_STARTUP_DELAY).observe(slo.startup_delay)
    registry.histogram(FLEET_REBUFFER_RATIO).observe(slo.rebuffer_ratio)
    return slo


def fleet_unit_task(unit: tuple[Any, ...]) -> list[tuple[int, SessionSLO]]:
    """Executor worker: score one execution unit — a batch group or one
    scalar session.

    Units come in two shapes:

    * ``("batch", token, drop_rate, num_packets, horizon, members)`` —
      every member session shares the token's compiled schedule and the
      replay coordinate, so one :func:`~repro.exec.replay_batch` kernel
      pass scores the whole group.  ``members`` is a tuple of
      ``(task_index, session_id, label, status, seed, wait_slots)``.
    * ``("scalar", task_index, task)`` — delegates to
      :func:`fleet_session_task` (ABR sessions, and fleets running with
      ``execution="scalar"``).

    Returns ``(task_index, SessionSLO)`` pairs in member order; the task
    index is fleet-global so the runner can attribute results (telemetry
    windows, shard timings) to the right session no matter how sessions
    were grouped.  Per-session counters/histograms match the scalar worker
    exactly, so registry snapshots are grouping-independent.
    """
    kind = unit[0]
    if kind == "scalar":
        _, task_index, task = unit
        return [(task_index, fleet_session_task(task))]
    _, token, drop_rate, num_packets, horizon, members = unit
    label = members[0][2]
    with worker_span(
        "session.replay", sessions=len(members), label=label
    ):
        schedule = worker_payload()[token]
        batch = replay_batch(
            schedule,
            [member[4] for member in members],
            drop_rate,
            num_packets=num_packets,
            num_slots=horizon,
            keep_node_columns=True,
        )
        registry = active_registry()
        slos = score_batch_sessions(
            batch,
            session_ids=[member[1] for member in members],
            labels=[member[2] for member in members],
            wait_slots=[member[5] for member in members],
            statuses=[member[3] for member in members],
        )
        for label, count in Counter(member[2] for member in members).items():
            registry.counter(FLEET_SESSIONS_REPLAYED, label=label).inc(count)
        startup_hist = registry.histogram(FLEET_STARTUP_DELAY)
        rebuffer_hist = registry.histogram(FLEET_REBUFFER_RATIO)
        out: list[tuple[int, SessionSLO]] = []
        for (task_index, *_), slo in zip(members, slos):
            startup_hist.observe(slo.startup_delay)
            rebuffer_hist.observe(slo.rebuffer_ratio)
            out.append((task_index, slo))
    return out


class FleetTelemetry:
    """Optional fleet-run telemetry bundle: time series + pipeline spans.

    Args:
        window: tumbling-window width (arrival slots) of the time series.
        relative_error: per-window sketch error bound.
        trace: record pipeline spans (compile/admit/execute/aggregate and
            per-session worker spans) under one trace id.
    """

    __slots__ = ("series", "spans")

    def __init__(
        self,
        *,
        window: int = 8,
        relative_error: float = DEFAULT_RELATIVE_ERROR,
        trace: bool = True,
    ) -> None:
        self.series = TimeSeries(window, relative_error=relative_error)
        self.spans: SpanTracer | None = SpanTracer() if trace else None

    def record_decision(self, decision: AdmissionDecision, arrival_slot: int) -> None:
        """Window the admission outcome at the session's arrival slot."""
        self.series.count(f"fleet.{decision.status}", arrival_slot)
        if decision.admitted and decision.wait_slots > 0:
            self.series.observe(FLEET_QUEUE_WAIT, arrival_slot, decision.wait_slots)

    def record_session(self, slo: SessionSLO, arrival_slot: int) -> None:
        """Window one completed session's SLO at its arrival slot."""
        self.series.count(FLEET_SESSIONS_COMPLETED, arrival_slot)
        self.series.observe(FLEET_STARTUP_DELAY, arrival_slot, slo.startup_delay)
        self.series.observe(FLEET_REBUFFER_RATIO, arrival_slot, slo.rebuffer_ratio)
        self.series.gauge(FLEET_GOODPUT, arrival_slot, slo.goodput)

    def rows(self) -> list[dict[str, Any]]:
        """Flat (window, series) rows for table rendering."""
        return self.series.rows()

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready dump: the full time series plus any finished spans."""
        payload: dict[str, Any] = {"series": self.series.to_dict()}
        if self.spans is not None:
            payload["trace_id"] = self.spans.trace_id
            payload["spans"] = self.spans.to_dicts()
        return payload


@dataclass(frozen=True, slots=True)
class FleetRunResult:
    """Everything a fleet run produced.

    Attributes:
        report: the aggregated :class:`~repro.service.slo.FleetSLOReport`.
        decisions: per-session admission outcomes, in arrival order.
        sessions: the resolved scenario the run executed.
        executor_info: how the execution fanned out
            (:attr:`SweepExecutor.last_run` plus ``tasks`` = sessions
            actually run, ``units`` = executor tasks after batch grouping,
            and ``execution`` = the fleet's execution mode;
            convergence-mode runs add the ``batches`` executed).
        shard_timings: per-shard wall-clock rows ``{"shard": task index,
            "elapsed_s": seconds}`` in completion order (shard ids are
            fleet-global even across convergence batches).
        telemetry: the :class:`FleetTelemetry` bundle the run recorded into
            (``None`` when telemetry was off).
        convergence: the final detector state for
            ``run_until_converged`` runs (``None`` otherwise).
        control_decisions: the control plane's
            :class:`~repro.control.ControlDecision` records, in decision
            order (empty for uncontrolled runs).
        control_epochs: one row per control epoch — observed p99, the
            policy/queue-bound knobs in force, and the epoch's
            admitted/degraded/rejected tallies (empty for uncontrolled
            runs).
    """

    report: FleetSLOReport
    decisions: tuple[AdmissionDecision, ...]
    sessions: tuple[ResolvedSession, ...]
    executor_info: dict
    shard_timings: tuple[dict, ...] = ()
    telemetry: FleetTelemetry | None = None
    convergence: ConvergenceState | None = None
    control_decisions: tuple[Any, ...] = ()
    control_epochs: tuple[dict, ...] = ()


class FleetRunner:
    """Execute fleet scenarios against a shared schedule cache.

    Args:
        cache: schedule cache shared across the fleet (a private in-process
            cache by default; pass one with a disk layer to amortize across
            runs too).
        policy: executor fan-out policy (worker count / serial / parallel).
        registry: metrics registry the run reports into (the active registry
            by default); admission counters, cache traffic, and merged worker
            snapshots all land here.
        tracer: optional :class:`~repro.obs.EventTracer` receiving
            ``session_*`` admission events.
        telemetry: optional :class:`FleetTelemetry` bundle; when given, the
            run records windowed time series and pipeline spans into it and
            attaches it to the :class:`FleetRunResult`.
    """

    def __init__(
        self,
        *,
        cache: ScheduleCache | None = None,
        policy: ExecutorPolicy | None = None,
        registry: MetricsRegistry | None = None,
        tracer: EventTracer | None = None,
        telemetry: FleetTelemetry | None = None,
    ) -> None:
        self.cache = cache if cache is not None else ScheduleCache(capacity=64)
        self.policy = policy if policy is not None else ExecutorPolicy()
        self.registry = registry
        self.tracer = tracer
        self.telemetry = telemetry
        #: Cache traffic of the last :meth:`run` (one lookup per admission).
        self.cache_hits = 0
        self.cache_misses = 0

    def _span(self, name: str, **attrs: Any) -> ContextManager:
        """A pipeline span scope when telemetry traces, else a no-op."""
        if self.telemetry is not None and self.telemetry.spans is not None:
            return self.telemetry.spans.span(name, **attrs)
        return nullcontext()

    # ------------------------------------------------------------------ build
    def _compile(
        self, spec: SessionSpec, degree: int, schedules: dict[str, Any]
    ) -> tuple[str, Any]:
        """Compile one configuration through the shared cache.

        Returns ``(token, schedule)`` and tallies the hit/miss.  ``run``
        memoizes this per configuration and tallies memo hits itself, so
        the fleet hit-rate still counts one lookup per admitted session
        and directly measures compile amortization.
        """
        provenance: dict = {}
        schedule = compile_schedule(
            spec.scheme,
            spec.num_nodes,
            degree,
            num_packets=spec.num_packets,
            construction=spec.construction,
            mode=spec.mode,
            latency=spec.latency,
            cache=self.cache,
            provenance=provenance,
        )
        if provenance["cache"] == "miss":
            self.cache_misses += 1
        else:
            self.cache_hits += 1
        token = provenance["cache_token"]
        schedules[token] = schedule
        return token, schedule

    # -------------------------------------------------------------------- api
    def run(self, fleet: FleetSpec) -> FleetRunResult:
        """Resolve, admit, execute, and score one fleet scenario.

        Sessions stream into a :class:`~repro.service.slo.FleetAggregator`
        as their shards complete; nothing per-session is retained when
        ``fleet.aggregation == "sketch"``.  With
        ``fleet.run_until_converged`` sessions execute in batches of
        ``fleet.convergence.check_every`` and the run stops once the
        tracked quantile's CI half-width criterion is met — decisions (and
        the report's admission tallies) then cover exactly the arrival
        prefix that was executed, which is well-defined because admission
        of session *i* depends only on earlier arrivals.  With
        ``fleet.controller`` set, admission and execution instead proceed
        in control epochs (:meth:`_run_controlled`) and the result carries
        the control plane's decision log and per-epoch rows.
        """
        registry = self.registry if self.registry is not None else active_registry()
        telemetry = self.telemetry
        self.cache_hits = 0
        self.cache_misses = 0
        schedules: dict[str, object] = {}
        tokens: dict[int, str] = {}
        compile_memo: dict[tuple, tuple[str, Any]] = {}
        with self._span("fleet.resolve"):
            sessions = fleet.resolve()

        def duration_of(session: ResolvedSession, degree: int) -> int:
            # Memoize per configuration for the run: the shared cache makes
            # repeat compiles cheap, but compile_schedule still rebuilds the
            # protocol to derive the horizon before it can consult the
            # cache — at fleet scale that dominates admission.  A memo hit
            # is the same outcome as a shared-cache hit, so the fleet
            # hit-rate (one lookup per admission) is unchanged.
            spec = session.spec
            key = (
                spec.scheme, spec.num_nodes, degree, spec.num_packets,
                spec.construction, spec.mode, spec.latency,
            )
            cached = compile_memo.get(key)
            if cached is None:
                cached = self._compile(spec, degree, schedules)
                compile_memo[key] = cached
            else:
                self.cache_hits += 1
            token, schedule = cached
            tokens[session.session_id] = token
            horizon = schedule.num_slots
            if session.leave_fraction is not None:
                # Churned viewer: capacity (and the SLO window) only cover
                # the watched prefix.
                horizon = max(1, int(session.leave_fraction * horizon))
            return horizon

        manager = SessionManager(
            fleet.capacity,
            policy=fleet.policy,
            max_queue_slots=fleet.max_queue_slots,
            min_degree=fleet.min_degree,
            tracer=self.tracer,
        )
        controlled = fleet.controller is not None
        with use_registry(registry):
            tasks: list[tuple] = []
            task_arrivals: list[int] = []
            by_id = {s.session_id: s for s in sessions}
            epoch_delays: list[int] = []

            def build_task(decision: AdmissionDecision) -> None:
                """Append one admitted session's executor task."""
                if not decision.admitted:
                    return
                session = by_id[decision.session_id]
                token = tokens[decision.session_id]
                full = schedules[token].num_slots
                horizon = decision.duration
                num_packets = session.spec.num_packets
                if horizon < full:
                    # Score only the packets the watched prefix can carry.
                    num_packets = max(1, int(num_packets * horizon / full))
                tasks.append(
                    (
                        decision.session_id,
                        session.spec.label,
                        decision.status,
                        token,
                        session.seed,
                        session.spec.drop_rate,
                        num_packets,
                        decision.wait_slots,
                        horizon,
                        session.spec.abr_profile,
                    )
                )
                task_arrivals.append(session.arrival_slot)

            sketch_mode = fleet.aggregation == "sketch"
            aggregator = FleetAggregator(
                relative_error=fleet.sketch_error if sketch_mode else 0.0,
                keep_sessions=not sketch_mode,
            )
            detector = (
                ConvergenceDetector(fleet.convergence)
                if fleet.run_until_converged else None
            )
            spans = telemetry.spans if telemetry is not None else None
            executor = SweepExecutor(self.policy, registry=registry, spans=spans)
            shard_timings: list[dict] = []
            batch_first = fleet.execution == "batch"
            workers = max(1, self.policy.resolved_workers())

            def build_units(
                window: list[tuple[Any, ...]], base: int
            ) -> tuple[list[tuple[Any, ...]], list[list[int]]]:
                """Group a task window into execution units.

                Batch-first mode groups sessions sharing a ``(schedule
                token, drop_rate, num_packets, horizon)`` coordinate into
                kernel units (each group split into roughly one block per
                worker so homogeneous fleets still fan out); ABR sessions
                — and everything in ``execution="scalar"`` mode — become
                scalar units.  Unit order is deterministic and independent
                of the worker count-driven split (group first-seen order,
                members in arrival order), so streaming aggregation folds
                identically serial or parallel.
                """
                units: list = []
                unit_members: list[list[int]] = []
                scalars: list[tuple[int, tuple]] = []
                groups: dict[tuple, list[tuple]] = {}
                for offset, task in enumerate(window):
                    task_index = base + offset
                    if not batch_first or task[9] is not None:
                        scalars.append((task_index, task))
                        continue
                    key = (task[3], task[5], task[6], task[8])
                    member = (
                        task_index, task[0], task[1], task[2], task[4], task[7],
                    )
                    groups.setdefault(key, []).append(member)
                for key, members in groups.items():
                    block = max(1, -(-len(members) // workers))
                    for lo in range(0, len(members), block):
                        chunk = tuple(members[lo:lo + block])
                        units.append(("batch", *key, chunk))
                        unit_members.append([m[0] for m in chunk])
                for task_index, task in scalars:
                    units.append(("scalar", task_index, task))
                    unit_members.append([task_index])
                return units, unit_members

            def execute_window(window: list[tuple[Any, ...]], base: int) -> int:
                if not window:
                    return 0
                units, unit_members = build_units(window, base)

                def on_result(index: int, pairs: list[tuple[int, SessionSLO]]) -> None:
                    aggregator.add_sessions([slo for _, slo in pairs])
                    if controlled:
                        epoch_delays.extend(slo.startup_delay for _, slo in pairs)
                    if telemetry is None and detector is None:
                        return
                    for task_index, slo in pairs:
                        if telemetry is not None:
                            telemetry.record_session(slo, task_arrivals[task_index])
                        if detector is not None:
                            detector.add(slo.startup_delay)

                executor.map(
                    fleet_unit_task, units, payload=schedules,
                    on_result=on_result, collect=False,
                )
                # One timing row per session: a unit's wall clock is split
                # evenly over its members, keyed by fleet-global task index.
                for row in executor.last_shards:
                    members = unit_members[int(row["shard"])]  # type: ignore[call-overload]
                    share = float(row["elapsed_s"]) / len(members)  # type: ignore[arg-type]
                    for task_index in members:
                        shard_timings.append(
                            {"shard": task_index, "elapsed_s": share}
                        )
                return len(units)

            conv_state: ConvergenceState | None = None
            control_decisions: tuple[Any, ...] = ()
            control_epochs: tuple[dict, ...] = ()
            if controlled:
                (
                    used_decisions, executor_info,
                    control_decisions, control_epochs,
                ) = self._run_controlled(
                    fleet, sessions, manager, duration_of,
                    build_task=build_task, execute_window=execute_window,
                    epoch_delays=epoch_delays, tasks=tasks, executor=executor,
                    by_id=by_id,
                )
                executed = len(tasks)
            else:
                with self._span("fleet.admit", sessions=fleet.num_sessions):
                    decisions = manager.admit_all(sessions, duration_of)
                for decision in decisions:
                    build_task(decision)
                with self._span("fleet.execute", tasks=len(tasks)):
                    if detector is None:
                        units_run = execute_window(tasks, 0)
                        executed = len(tasks)
                        executor_info = dict(executor.last_run)
                    else:
                        batch = fleet.convergence.check_every
                        executed = 0
                        batches = 0
                        units_run = 0
                        while executed < len(tasks):
                            chunk = tasks[executed:executed + batch]
                            units_run += execute_window(chunk, executed)
                            executed += len(chunk)
                            batches += 1
                            conv_state = detector.state()
                            if conv_state.converged:
                                break
                        executor_info = dict(executor.last_run)
                        executor_info["batches"] = batches
                    executor_info["tasks"] = executed
                    executor_info["units"] = units_run
                    executor_info["execution"] = fleet.execution
                # On early stop, the report covers exactly the arrival
                # prefix that was executed: admission decisions for session
                # i depend only on earlier arrivals, so the prefix is
                # self-consistent.
                if executed < len(tasks):
                    cutoff = tasks[executed - 1][0] if executed else -1
                    used_decisions = [
                        d for d in decisions if d.session_id <= cutoff
                    ]
                else:
                    used_decisions = list(decisions)
            shard_timings.sort(key=lambda row: row["shard"])
            for decision in used_decisions:
                aggregator.add_decision(decision)
                if telemetry is not None:
                    telemetry.record_decision(
                        decision, by_id[decision.session_id].arrival_slot
                    )

            with self._span("fleet.aggregate", sessions=executed):
                report = aggregator.report(
                    cache_hits=self.cache_hits,
                    cache_misses=self.cache_misses,
                )
            registry.gauge(FLEET_CACHE_HIT_RATE).set(report.cache_hit_rate)
        return FleetRunResult(
            report=report,
            decisions=tuple(used_decisions),
            sessions=sessions,
            executor_info=executor_info,
            shard_timings=tuple(shard_timings),
            telemetry=telemetry,
            convergence=conv_state,
            control_decisions=control_decisions,
            control_epochs=control_epochs,
        )

    def _run_controlled(
        self,
        fleet: FleetSpec,
        sessions: tuple[ResolvedSession, ...],
        manager: SessionManager,
        duration_of: Callable[[ResolvedSession], int],
        *,
        build_task: Callable[[AdmissionDecision], None],
        execute_window: Callable[[list[tuple[Any, ...]], int], int],
        epoch_delays: list[int],
        tasks: list,
        executor: SweepExecutor,
        by_id: dict[int, ResolvedSession],
    ) -> tuple[
        list[AdmissionDecision], dict[str, Any],
        tuple[Any, ...], tuple[dict[str, Any], ...],
    ]:
        """The control plane's decide→act→observe epoch loop.

        Arrivals are admitted in epochs of ``controller.epoch_sessions``.
        At the top of each epoch the :class:`~repro.control.ControlPlane`
        reads the *previous* epoch's p99 startup delay and admission
        tallies plus the upcoming chunk's mix and churn, decides, and its
        knobs (admission policy, queue bound, per-kind degree overrides)
        are applied before the chunk is admitted and executed — so every
        decision is observed one epoch later.  Runs inside the caller's
        ``use_registry`` scope.

        Returns ``(decisions_in_arrival_order, executor_info,
        control_decisions, control_epoch_rows)``.
        """
        from repro.control.controllers import ControlPlane, EpochObservation

        spans = (
            self.telemetry.spans if self.telemetry is not None else None
        )
        plane = ControlPlane(
            fleet.controller,
            initial_policy=fleet.policy,
            max_queue_slots=fleet.max_queue_slots,
            min_degree=fleet.min_degree,
            cache=self.cache,
            seed=fleet.seed,
            spans=spans,
            tracer=self.tracer,
        )
        kinds = {s.label: s for s in fleet.sessions}
        epoch_size = fleet.controller.epoch_sessions
        manager.start()
        made_all: list[AdmissionDecision] = []
        epoch_rows: list[dict] = []
        seen_delays: Counter[int] = Counter()
        prev_delays: list[int] = []
        prev_made: list[AdmissionDecision] = []
        executor_info: dict | None = None
        units_run = 0
        epochs = 0

        def run_window(base: int) -> None:
            nonlocal units_run, executor_info
            epoch_delays.clear()
            ran = execute_window(tasks[base:], base)
            units_run += ran
            if ran:
                executor_info = dict(executor.last_run)

        def tally(made: list[AdmissionDecision]) -> dict[str, int]:
            counts = Counter(d.status for d in made)
            return {
                "admitted": counts["admitted"],
                "degraded": counts["degraded"],
                "rejected": counts["rejected"],
            }

        with self._span("fleet.execute", tasks=len(sessions)):
            for lo in range(0, len(sessions), epoch_size):
                chunk = list(sessions[lo:lo + epoch_size])
                p99 = (
                    float(pooled_percentile(Counter(prev_delays), 99))
                    if prev_delays else None
                )
                cumulative = (
                    float(pooled_percentile(seen_delays, 99))
                    if seen_delays else None
                )
                prev = tally(prev_made)
                mix = Counter(s.spec.label for s in chunk)
                obs = EpochObservation(
                    epoch=epochs,
                    p99=p99,
                    cumulative_p99=cumulative,
                    admitted=prev["admitted"],
                    degraded=prev["degraded"],
                    rejected=prev["rejected"],
                    arrivals=len(chunk),
                    joins=len(chunk),
                    leaves=sum(
                        1 for s in chunk if s.leave_fraction is not None
                    ),
                    mix=tuple(sorted(mix.items())),
                )
                stepped = plane.step(obs, kinds)
                manager.policy = plane.admission_policy
                manager.max_queue_slots = plane.max_queue_slots
                overrides = plane.degree_overrides
                if overrides:
                    chunk = [
                        replace(s, spec=s.spec.with_degree(
                            overrides[s.spec.label]
                        ))
                        if overrides.get(s.spec.label, s.spec.degree)
                        != s.spec.degree
                        else s
                        for s in chunk
                    ]
                    for session in chunk:
                        by_id[session.session_id] = session
                made = manager.admit_chunk(chunk, duration_of)
                base = len(tasks)
                for decision in made:
                    build_task(decision)
                run_window(base)
                prev_delays = list(epoch_delays)
                seen_delays.update(epoch_delays)
                made_all.extend(made)
                prev_made = made
                epoch_rows.append({
                    "epoch": epochs,
                    "arrivals": len(chunk),
                    "observed_p99": p99,
                    "policy": manager.policy,
                    "max_queue_slots": manager.max_queue_slots,
                    **tally(made),
                    "queued": manager.queued_count,
                    "decisions": len(stepped),
                })
                epochs += 1
            # All arrivals seen: drain the queue on departures alone and
            # execute the stragglers as one final window.
            made = manager.finalize(duration_of)
            base = len(tasks)
            for decision in made:
                build_task(decision)
            run_window(base)
            made_all.extend(made)
            if made:
                epoch_rows.append({
                    "epoch": epochs,
                    "arrivals": 0,
                    "observed_p99": None,
                    "policy": manager.policy,
                    "max_queue_slots": manager.max_queue_slots,
                    **tally(made),
                    "queued": 0,
                    "decisions": 0,
                })
        if executor_info is None:
            executor_info = dict(executor.last_run) or {
                "mode": "empty", "workers": 0, "fallback": False,
            }
        executor_info["tasks"] = len(tasks)
        executor_info["units"] = units_run
        executor_info["execution"] = fleet.execution
        executor_info["epochs"] = epochs
        by_session = {d.session_id: d for d in made_all}
        decisions = [by_session[s.session_id] for s in sessions]
        return (
            decisions, executor_info,
            tuple(plane.decisions), tuple(epoch_rows),
        )
