"""Property suite: appendix add/delete/lazy repair never breaks a schedule.

The control plane's churn controller repairs a session kind's forest with
:func:`repro.trees.live.fleet_repair` and then *re-caches the kind's
compiled schedule* — so the safety property that matters is end-to-end:
after **any** random join/leave sequence (eager or lazy), the repaired
population's compiled schedule still passes all 9 ``repro.check``
invariants (well-formedness, capacities, causality, duplicates, coverage,
playability, the Theorem 2 delay bound, and the buffer bound).  The fixed
cases in ``test_trees_dynamics.py`` pin known sequences; these properties
randomize the sequence itself.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.check import check_config
from repro.exec.cache import ScheduleCache
from repro.theory import theorem2_bound
from repro.trees.dynamics import DynamicForest
from repro.trees.live import fleet_repair

#: A churn script: ("add" | "delete") ops applied in order.  Deletes are
#: skipped when the population is already at the floor, so any script is
#: valid for any starting size.
OPS = st.lists(st.sampled_from(["add", "delete"]), min_size=1, max_size=20)

SCENARIO = st.tuples(
    st.integers(min_value=4, max_value=30),   # starting N
    st.sampled_from([2, 3]),                  # degree (the Section-5 set)
    st.booleans(),                            # lazy maintenance
    OPS,
    st.integers(min_value=0, max_value=2**31 - 1),  # victim-draw seed
)


def _apply(forest: DynamicForest, ops, seed: int) -> list:
    """Run the op script, drawing delete victims deterministically."""
    import numpy as np

    rng = np.random.default_rng(seed)
    reports = []
    for op in ops:
        if op == "delete" and len(forest.real_ids) > 3:
            victims = sorted(forest.real_ids)
            victim = victims[int(rng.integers(0, len(victims)))]
            reports.append(forest.delete_node(victim))
        elif op == "add":
            _, report = forest.add_node()
            reports.append(report)
    return reports


class TestRepairStructure:
    @settings(max_examples=40, deadline=None)
    @given(SCENARIO)
    def test_invariants_hold_after_every_operation(self, scenario):
        n, d, lazy, ops, seed = scenario
        forest = DynamicForest(n, d, lazy=lazy)
        import numpy as np

        rng = np.random.default_rng(seed)
        for op in ops:
            if op == "delete" and len(forest.real_ids) > 3:
                victims = sorted(forest.real_ids)
                forest.delete_node(victims[int(rng.integers(0, len(victims)))])
            elif op == "add":
                forest.add_node()
            forest.verify()

    @settings(max_examples=40, deadline=None)
    @given(SCENARIO)
    def test_per_operation_swap_costs_match_appendix(self, scenario):
        n, d, lazy, ops, seed = scenario
        forest = DynamicForest(n, d, lazy=lazy)
        for report in _apply(forest, ops, seed):
            if report.operation == "add":
                # Addition: free while a dummy slot exists; <= d when the
                # trees grow a level.
                assert report.swaps <= d
            else:
                # Deletion: <= d to swap an interior node leafward, plus
                # <= d^2 when the trees shrink a level.
                assert report.swaps <= d + d * d
            # The hiccup-candidate set is what the paper bounds by ~d^2.
            assert len(report.touched) <= 2 * (d * d + d)

    @settings(max_examples=40, deadline=None)
    @given(SCENARIO)
    def test_compact_restores_tightness(self, scenario):
        n, d, lazy, ops, seed = scenario
        forest = DynamicForest(n, d, lazy=lazy)
        _apply(forest, ops, seed)
        forest.compact()
        live = len(forest.real_ids)
        assert forest.interior == max(0, -(-live // d) - 1)
        forest.verify()


class TestRepairedSchedule:
    """The end-to-end property: repaired population -> valid schedule."""

    @settings(max_examples=25, deadline=None)
    @given(SCENARIO)
    def test_repaired_population_passes_all_nine_invariants(self, scenario):
        n, d, lazy, ops, seed = scenario
        forest = DynamicForest(n, d, lazy=lazy)
        _apply(forest, ops, seed)
        live = len(forest.real_ids)
        # The exact artifact the churn controller re-caches: the repaired
        # population's compiled multi-tree schedule.
        report = check_config(
            "multi-tree", live, d, num_packets=4, cache=ScheduleCache()
        )
        assert report.ok, report.summary()

    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(min_value=6, max_value=40),
        st.sampled_from([2, 3]),
        st.integers(min_value=0, max_value=6),
        st.integers(min_value=0, max_value=6),
        st.booleans(),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_fleet_repair_outcome_is_verified_and_checkable(
        self, n, d, joins, leaves, lazy, seed
    ):
        outcome = fleet_repair(
            n, d, joins=joins, leaves=leaves, lazy=lazy, seed=seed
        )
        # fleet_repair verifies the forest itself; the outcome's totals
        # must agree with its per-operation reports.
        assert outcome.swaps == sum(r.swaps for r in outcome.reports)
        union = frozenset().union(
            *(r.touched for r in outcome.reports)
        ) if outcome.reports else frozenset()
        assert outcome.touched == union
        assert outcome.lazy == lazy
        live = len(outcome.forest.real_ids)
        report = check_config(
            "multi-tree", live, d, num_packets=4, cache=ScheduleCache()
        )
        assert report.ok, report.summary()
        # The Theorem 2 bound the checker enforced is the paper's h*d.
        assert theorem2_bound(live, d) >= 1
