"""An explicit playback buffer for step-by-step consumer simulations.

Most analyses in this package derive buffer occupancy directly from arrival
traces (:mod:`repro.core.playback`); this class is the imperative counterpart
used by the examples and by tests that exercise hiccup behaviour slot by slot.
"""

from __future__ import annotations

__all__ = ["PlaybackBuffer"]


class PlaybackBuffer:
    """In-order playback buffer with hiccup accounting.

    Packets may be inserted in any order but are consumed strictly in sequence
    (0, 1, 2, ...), one per :meth:`consume` call, matching the paper's playback
    model of one packet per time slot.

    Args:
        capacity: optional hard limit on resident packets; inserting beyond it
            raises ``OverflowError``.  ``None`` means unbounded.
    """

    def __init__(self, capacity: int | None = None) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be positive or None, got {capacity}")
        self._capacity = capacity
        self._resident: set[int] = set()
        self._next_packet = 0
        self._hiccups = 0
        self._peak = 0

    @property
    def capacity(self) -> int | None:
        return self._capacity

    @property
    def occupancy(self) -> int:
        """Packets currently resident."""
        return len(self._resident)

    @property
    def peak_occupancy(self) -> int:
        """Largest occupancy ever observed."""
        return self._peak

    @property
    def hiccups(self) -> int:
        """Consume attempts that failed because the next packet was missing."""
        return self._hiccups

    @property
    def next_packet(self) -> int:
        """Sequence number the next successful consume will play."""
        return self._next_packet

    def insert(self, packet: int) -> None:
        """Add an arrived packet.

        Packets older than the playback point are ignored (already played or
        skipped); duplicates are idempotent.
        """
        if packet < 0:
            raise ValueError(f"packet must be non-negative, got {packet}")
        if packet < self._next_packet or packet in self._resident:
            return
        if self._capacity is not None and len(self._resident) >= self._capacity:
            raise OverflowError(
                f"buffer capacity {self._capacity} exceeded inserting packet {packet}"
            )
        self._resident.add(packet)
        self._peak = max(self._peak, len(self._resident))

    def consume(self) -> int | None:
        """Play the next in-order packet; returns it, or None on a hiccup."""
        packet = self._next_packet
        if packet in self._resident:
            self._resident.remove(packet)
            self._next_packet += 1
            return packet
        self._hiccups += 1
        return None

    def __contains__(self, packet: int) -> bool:
        return packet in self._resident

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"PlaybackBuffer(next={self._next_packet}, occupancy={self.occupancy}, "
            f"peak={self._peak}, hiccups={self._hiccups})"
        )
