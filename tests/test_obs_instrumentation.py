"""Integration tests: the instrumentation layer wired through the engine,
repair subsystem, churn workloads, and parallel sweeps — including the
acceptance check that a replayed JSONL event stream reproduces the metrics
layer's numbers exactly."""

from __future__ import annotations

import pytest

from repro.core.engine import SimConfig, simulate
from repro.core.errors import ReproError
from repro.core.metrics import collect_repair_metrics, summarize_lossy_playback
from repro.obs import Instrumentation
from repro.obs.events import (
    CHURN_APPLIED,
    GAP_DETECTED,
    PARITY_RECOVERED,
    PLAYBACK_STALL,
    REPAIR_SCHEDULED,
    RUN_END,
    RUN_START,
    SLOT_START,
    TX_DELIVERED,
    TX_DROPPED,
    TX_SENT,
    count_events,
    read_events_jsonl,
    replay_arrivals,
)
from repro.repair.retransmit import RetransmissionCoordinator
from repro.repair.session import default_grace, make_lossy_protocol, repair_experiment
from repro.repair.slack import SlackPolicy, SlackProvisioner
from repro.trees import MultiTreeProtocol
from repro.workloads.faults import bernoulli_drop


class TestEngineEvents:
    def test_clean_run_event_stream(self):
        protocol = MultiTreeProtocol(15, 3)
        num_slots = protocol.slots_for_packets(9)
        instr = Instrumentation.collecting(profile=True)
        trace = simulate(protocol, num_slots, instrumentation=instr)

        counts = instr.tracer.counts
        assert counts[RUN_START] == 1
        assert counts[RUN_END] == 1
        assert counts[SLOT_START] == num_slots
        assert counts[TX_SENT] == len(trace.transmissions)
        assert counts[TX_DROPPED] == 0
        # Every delivery produced an event; first arrivals match the trace.
        delivered_new = sum(len(a) for a in trace.all_arrivals().values())
        ring = instr.ring_events()
        new_events = [
            e for e in ring if e.name == TX_DELIVERED and e.fields["new"]
        ]
        assert len(new_events) == delivered_new

    def test_run_end_summarizes_run(self):
        protocol = MultiTreeProtocol(7, 3)
        instr = Instrumentation.collecting(profile=False)
        trace = simulate(protocol, protocol.slots_for_packets(6), instrumentation=instr)
        (end,) = [e for e in instr.ring_events() if e.name == RUN_END]
        assert end.fields["sent"] == len(trace.transmissions)
        assert end.fields["dropped"] == len(trace.dropped)
        assert end.fields["delivered"] == sum(
            len(a) for a in trace.all_arrivals().values()
        )

    def test_registry_counters_match_trace(self):
        protocol = MultiTreeProtocol(15, 3)
        instr = Instrumentation.collecting(ring_capacity=None, profile=False)
        trace = simulate(protocol, protocol.slots_for_packets(9), instrumentation=instr)
        label = type(protocol).__name__
        reg = instr.registry
        assert reg.counter("engine.runs", protocol=label).value == 1
        assert reg.counter("engine.tx.sent", protocol=label).value == len(
            trace.transmissions
        )
        assert reg.counter("engine.tx.delivered", protocol=label).value == sum(
            len(a) for a in trace.all_arrivals().values()
        )

    def test_profiler_covers_engine_phases(self):
        protocol = MultiTreeProtocol(15, 3)
        instr = Instrumentation.collecting(ring_capacity=None, profile=True)
        simulate(protocol, protocol.slots_for_packets(6), instrumentation=instr)
        phases = set(instr.profiler.snapshot())
        assert {"schedule", "validate", "deliver"} <= phases

    def test_instrumented_run_matches_uninstrumented(self):
        bare = simulate(MultiTreeProtocol(15, 3), 20)
        instr = Instrumentation.collecting()
        traced = simulate(MultiTreeProtocol(15, 3), 20, instrumentation=instr)
        assert bare.all_arrivals() == traced.all_arrivals()

    def test_replay_matches_trace_arrivals(self, tmp_path):
        path = tmp_path / "events.jsonl"
        protocol = MultiTreeProtocol(15, 3)
        instr = Instrumentation.collecting(
            events_path=path, ring_capacity=None, profile=False
        )
        trace = simulate(protocol, protocol.slots_for_packets(9), instrumentation=instr)
        instr.close()
        replayed = replay_arrivals(read_events_jsonl(path))
        assert replayed == {n: a for n, a in trace.all_arrivals().items() if a}


class TestHookValidation:
    """Satellite: hook signatures are checked early with a clear ReproError."""

    def test_drop_rule_wrong_arity(self):
        with pytest.raises(ReproError, match=r"drop_rule.*\(transmission\) -> bool"):
            SimConfig(num_slots=1, drop_rule=lambda a, b: False)

    def test_repair_hook_wrong_arity(self):
        with pytest.raises(ReproError, match=r"repair_hook.*slot, arrived, dropped"):
            SimConfig(num_slots=1, repair_hook=lambda slot: None)

    def test_valid_hooks_accepted(self):
        SimConfig(num_slots=1, drop_rule=lambda tx: False)
        SimConfig(num_slots=1, repair_hook=lambda slot, arrived, dropped: None)

    def test_non_callable_still_value_error(self):
        with pytest.raises(ValueError):
            SimConfig(num_slots=1, drop_rule=42)

    def test_flexible_signatures_accepted(self):
        SimConfig(num_slots=1, drop_rule=lambda *args: False)
        SimConfig(num_slots=1, repair_hook=lambda slot, *rest: None)


class TestLossAndRepairEvents:
    def test_drop_events_match_trace(self):
        protocol = make_lossy_protocol("multi-tree", 15, 3)
        instr = Instrumentation.collecting(profile=False)
        trace = simulate(
            protocol,
            protocol.slots_for_packets(12),
            drop_rule=bernoulli_drop(0.05, seed=7),
            instrumentation=instr,
        )
        assert trace.dropped  # the run actually lost something
        assert instr.tracer.counts[TX_DROPPED] == len(trace.dropped)

    def test_retransmit_experiment_emits_repair_events(self, tmp_path):
        path = tmp_path / "repair.jsonl"
        instr = Instrumentation.collecting(events_path=path, profile=False)
        result = repair_experiment(
            "multi-tree", 15, 3, num_packets=20, mode="retransmit",
            epsilon=0.1, loss_rate=0.02, seed=3, instrumentation=instr,
        )
        instr.close()
        counts = count_events(read_events_jsonl(path))
        assert counts[GAP_DETECTED] > 0
        assert counts[REPAIR_SCHEDULED] > 0
        assert counts == instr.tracer.counts

    def test_parity_experiment_emits_recovery_events(self):
        instr = Instrumentation.collecting(profile=False)
        result = repair_experiment(
            "multi-tree", 15, 3, num_packets=16, mode="parity",
            group=4, loss_rate=0.03, seed=1, instrumentation=instr,
        )
        assert instr.tracer.counts[PARITY_RECOVERED] == result.repairs
        assert result.repairs > 0


class TestChurnEvents:
    def test_churn_run_emits_events(self):
        from repro.trees.live import ScheduledChurn, churn_experiment
        from repro.workloads.churn import ChurnEvent

        churn = [
            ScheduledChurn(6, ChurnEvent("add")),
            ScheduledChurn(9, ChurnEvent("delete"), victim=5),
        ]
        instr = Instrumentation.collecting(profile=False)
        protocol, report = churn_experiment(
            18, 3, churn, num_packets=24, instrumentation=instr
        )
        assert instr.tracer.counts[CHURN_APPLIED] == len(protocol.reports)
        assert instr.tracer.counts[PLAYBACK_STALL] == report.total_hiccups


class TestAcceptance:
    """ISSUE acceptance: the JSONL stream of a lossy multi-tree run with
    repair, replayed, reproduces the metrics layer's numbers exactly."""

    def test_replayed_counters_match_metrics_exactly(self, tmp_path):
        path = tmp_path / "acceptance.jsonl"
        num_packets = 20
        protocol = SlackProvisioner(
            make_lossy_protocol("multi-tree", 15, 3), SlackPolicy(epsilon=0.1)
        )
        num_slots = protocol.slots_for_packets(num_packets)
        clean = simulate(protocol, num_slots)

        instr = Instrumentation.collecting(
            events_path=path, ring_capacity=None, profile=False
        )
        coordinator = RetransmissionCoordinator(
            protocol, grace=default_grace(protocol), tracer=instr.tracer
        )
        lossy = simulate(
            protocol, num_slots,
            drop_rule=bernoulli_drop(0.02, seed=3),
            repair_hook=coordinator.hook,
            instrumentation=instr,
        )
        instr.close()
        assert lossy.dropped and lossy.injected  # losses occurred and were repaired

        events = read_events_jsonl(path)
        replayed = {
            node: replay_arrivals(events).get(node, {}) for node in lossy.nodes
        }
        assert replayed == lossy.all_arrivals()

        from_events = collect_repair_metrics(
            replayed, num_packets=num_packets, num_slots=num_slots,
            baseline=clean.all_arrivals(),
        )
        from_trace = collect_repair_metrics(
            lossy.all_arrivals(), num_packets=num_packets, num_slots=num_slots,
            baseline=clean.all_arrivals(),
        )
        assert from_events == from_trace

        for node in lossy.nodes:
            assert summarize_lossy_playback(
                replayed[node], num_packets
            ) == summarize_lossy_playback(lossy.arrivals(node), num_packets)
