#!/usr/bin/env python
"""A streaming service's peak hour: 600 sessions against finite capacity.

Scenario: a provider serves three audiences at once — big multi-tree
premieres, mid-size hypercube swarms for buffer-constrained set-top boxes,
and small single-tree rooms.  Sessions arrive as a Poisson process against a
shared source fan-out and backbone budget; when the budget runs out the
admission controller degrades a session's tree degree before giving up on
it.  One :class:`repro.FleetRunner` call answers the operator questions the
single-run paper metrics cannot: what startup delay does the *99th
percentile viewer* see, how many sessions get degraded, and how much compile
work the schedule cache amortized away.

Run:  python examples/fleet_peak_hour.py
"""

from repro import CapacityModel, FleetRunner, FleetSpec, SessionSpec
from repro.exec.executor import ExecutorPolicy

MIX = (
    # (weight) premieres: big trees, most of the audience
    SessionSpec(scheme="multi-tree", num_nodes=63, degree=3,
                num_packets=16, weight=3.0),
    # set-top boxes: hypercube keeps their tiny buffers honest
    SessionSpec(scheme="hypercube", num_nodes=32, degree=3,
                num_packets=16, weight=2.0),
    # watch parties: small rooms, a plain single tree is fine
    SessionSpec(scheme="single-tree", num_nodes=15, degree=3,
                num_packets=16, weight=1.0),
)


def main() -> None:
    fleet = FleetSpec(
        sessions=MIX,
        num_sessions=600,
        arrival_rate=2.0,           # sessions per slot at the peak
        capacity=CapacityModel(source_fanout=200.0, backbone=5000.0),
        policy="degrade",           # shed degree, not viewers
        min_degree=2,
        churn_rate=0.15,            # some viewers leave mid-stream
        seed=7,
    )
    print(fleet.describe())

    result = FleetRunner(policy=ExecutorPolicy(mode="auto")).run(fleet)
    report = result.report

    print("\nAdmission over the peak hour:")
    print(f"  admitted {report.admitted}, degraded {report.degraded}, "
          f"queued {report.queued}, rejected {report.rejected} "
          f"(reject rate {report.reject_rate:.1%})")

    print("\nWhat viewers experienced (pooled over every node of every session):")
    print(f"  startup delay: p50={report.startup_p50} p95={report.startup_p95} "
          f"p99={report.startup_p99} worst={report.startup_max} slots")
    print(f"  playback delay: p50={report.delay_p50} p99={report.delay_p99} slots")
    print(f"  buffer peak:   p50={report.buffer_p50} p99={report.buffer_p99} packets")
    print(f"  rebuffer ratio: mean={report.rebuffer_mean:.4f} "
          f"max={report.rebuffer_max:.4f}; goodput {report.goodput_mean:.3f}")

    print("\nWhat the service paid:")
    print(f"  schedule compiles: {report.cache_misses} "
          f"(cache hit rate {report.cache_hit_rate:.3f} over "
          f"{report.cache_hits + report.cache_misses} admissions)")
    executor = result.executor_info
    print(f"  executor: {executor['mode']} x{executor['workers']} "
          f"over {executor['tasks']} sessions")

    worst = max(report.sessions, key=lambda s: s.startup_delay)
    print(f"\nWorst session: #{worst.session_id} [{worst.label}] "
          f"startup {worst.startup_delay} slots "
          f"({worst.wait_slots} queued), status {worst.status}")


if __name__ == "__main__":
    main()
