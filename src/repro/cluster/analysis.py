"""Theorem 1: worst-case delay of the clustered system."""

from __future__ import annotations

import math
from dataclasses import dataclass
from statistics import mean

from repro.cluster.protocol import ClusteredStreamingProtocol
from repro.core.engine import simulate
from repro.core.metrics import truncate_arrivals
from repro.core.playback import earliest_safe_start
from repro.trees.analysis import all_playback_delays

__all__ = [
    "ClusterQoS",
    "analyze_clustered",
    "per_cluster_qos",
    "predicted_worst_delay",
    "theorem1_bound",
]


def theorem1_bound(
    num_clusters: int,
    source_degree: int,
    degree: int,
    height: int,
    inter_cluster_latency: int,
    intra_cluster_latency: int = 1,
) -> float:
    """Theorem 1: worst-case delay is on the order of
    ``T_c * log_{D-1} K + T_i * d * (h - 1)``.

    ``h`` is the maximum intra-cluster tree height.  This is an order bound;
    the benches report it next to the exact prediction and the measurement.
    """
    if source_degree > 2 and num_clusters > 1:
        backbone = math.log(num_clusters, source_degree - 1)
    else:
        backbone = float(num_clusters)
    return (
        inter_cluster_latency * backbone
        + intra_cluster_latency * degree * max(height - 1, 0)
    )


def predicted_worst_delay(protocol: ClusteredStreamingProtocol) -> int:
    """Exact worst-case startup delay of the deterministic clustered schedule.

    For each cluster: the local schedule starts at the cluster shift and the
    worst local node has the scheme's worst playback delay within it.
    """
    from repro.hypercube.cascade import expected_worst_delay

    worst = 0
    for cluster in range(protocol.num_clusters):
        shift = protocol.cluster_schedule_shift(cluster)
        if protocol.cluster_schemes[cluster] == "multi-tree":
            local_worst = max(all_playback_delays(protocol.forests[cluster]).values())
        else:
            local_worst = max(
                expected_worst_delay(len(lane.id_map))
                for lane in protocol._lanes[cluster]
            )
        worst = max(worst, shift + local_worst)
    return worst


@dataclass(frozen=True, slots=True)
class ClusterQoS:
    """Measured vs predicted QoS for a clustered configuration."""

    num_clusters: int
    total_receivers: int
    measured_max_delay: int
    measured_avg_delay: float
    predicted_max_delay: int
    theorem1_bound: float


def per_cluster_qos(
    protocol: ClusteredStreamingProtocol,
    trace,
    *,
    num_packets: int,
) -> list[dict]:
    """Per-cluster QoS breakdown from a finished clustered simulation.

    One dict per cluster with the scheme name, receiver count, worst/mean
    startup delay, and worst buffer peak — the table the mixed-deployment
    bench prints.
    """
    from repro.core.playback import buffer_peak

    rows = []
    for cluster, layout in enumerate(protocol.layouts):
        delays, buffers = [], []
        for node in layout.receiver_range:
            arrivals = truncate_arrivals(dict(trace.arrivals(node)), num_packets)
            start = earliest_safe_start(arrivals)
            delays.append(start)
            buffers.append(buffer_peak(arrivals, start))
        rows.append(
            {
                "cluster": cluster,
                "scheme": protocol.cluster_schemes[cluster],
                "receivers": layout.num_receivers,
                "max_delay": max(delays),
                "avg_delay": mean(delays),
                "max_buffer": max(buffers),
            }
        )
    return rows


def analyze_clustered(
    protocol: ClusteredStreamingProtocol, *, num_packets: int = 12
) -> ClusterQoS:
    """Simulate the full clustered system and collect receiver delays."""
    trace = simulate(protocol, protocol.slots_for_packets(num_packets))
    delays = []
    for node in protocol.receiver_ids:
        arrivals = truncate_arrivals(dict(trace.arrivals(node)), num_packets)
        delays.append(earliest_safe_start(arrivals))
    tree_heights = [f.height for f in protocol.forests if f is not None]
    height = max(tree_heights) if tree_heights else 1
    bound = theorem1_bound(
        protocol.num_clusters,
        protocol.supertree.source_degree,
        protocol.degree,
        height,
        protocol.t_c,
    )
    return ClusterQoS(
        num_clusters=protocol.num_clusters,
        total_receivers=len(protocol.receiver_ids),
        measured_max_delay=max(delays),
        measured_avg_delay=mean(delays),
        predicted_max_delay=predicted_worst_delay(protocol),
        theorem1_bound=bound,
    )
