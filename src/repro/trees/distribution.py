"""Per-node delay and buffer distributions for the multi-tree scheme.

The paper reports the worst case (Figure 4) and bounds the average
(Theorem 3); these utilities expose the full per-node distribution — delay
histograms, quantiles, and the per-level structure — used by the
distribution extension bench and the examples.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import numpy as np

from repro.core.errors import ConstructionError
from repro.trees.analysis import all_playback_delays, buffer_requirements
from repro.trees.forest import MultiTreeForest

__all__ = [
    "DelayDistribution",
    "delay_distribution",
    "delay_histogram",
    "buffer_histogram",
    "delays_by_depth",
]


@dataclass(frozen=True, slots=True)
class DelayDistribution:
    """Summary statistics of per-node playback delays.

    Attributes:
        num_nodes: population size.
        minimum / maximum: extreme delays.
        mean / median: central tendency.
        quantiles: delay at the 50th/90th/99th percentiles.
    """

    num_nodes: int
    minimum: int
    maximum: int
    mean: float
    median: float
    quantiles: dict[int, float]


def delay_distribution(forest: MultiTreeForest) -> DelayDistribution:
    """Distribution of the paper-rule playback delays ``a(i)``."""
    delays = np.array(sorted(all_playback_delays(forest).values()), dtype=float)
    if delays.size == 0:
        raise ConstructionError("forest has no real nodes")
    return DelayDistribution(
        num_nodes=int(delays.size),
        minimum=int(delays[0]),
        maximum=int(delays[-1]),
        mean=float(delays.mean()),
        median=float(np.median(delays)),
        quantiles={
            q: float(np.percentile(delays, q)) for q in (50, 90, 99)
        },
    )


def delay_histogram(forest: MultiTreeForest) -> dict[int, int]:
    """delay value -> number of nodes with that playback delay."""
    return dict(sorted(Counter(all_playback_delays(forest).values()).items()))


def buffer_histogram(forest: MultiTreeForest) -> dict[int, int]:
    """buffer peak -> number of nodes needing that much buffer."""
    return dict(sorted(Counter(buffer_requirements(forest).values()).items()))


def delays_by_depth(forest: MultiTreeForest) -> dict[int, tuple[int, float, int]]:
    """Depth in ``T_0`` -> (min, mean, max) playback delay at that depth.

    Shows the structural effect the constructions exploit: a node's delay is
    dominated by its *deepest* position across the ``d`` trees, so depth in
    any single tree only partially orders the delays.
    """
    delays = all_playback_delays(forest)
    by_depth: dict[int, list[int]] = {}
    tree0 = forest.trees[0]
    for node in forest.real_nodes:
        by_depth.setdefault(tree0.depth_of(node), []).append(delays[node])
    return {
        depth: (min(values), sum(values) / len(values), max(values))
        for depth, values in sorted(by_depth.items())
    }
