"""Fleet-scale acceptance: 1000 sessions over 8 configs, amortized compiles.

The fleet service's claim is that a large multi-session scenario costs about
as much as running each configuration once: the shared content-addressed
schedule cache turns 1000 session admissions into 8 compiles plus 1000
engine-free replays.  This bench runs one 1000-session fleet over 8 distinct
``(scheme, N, d)`` configurations and compares its wall-clock against 8
isolated single-kind runs covering the same sessions with private caches —
the fleet must stay under 2x the isolated total (it does the same replay
work plus admission control) and its schedule-cache hit rate must be at
least 0.99 (8 misses in 1000 lookups = 0.992).

Two further acceptance tests cover the telemetry layer (docs/TELEMETRY.md):

* **sketch aggregation at 10k sessions** — ``aggregation="sketch"`` streams
  every SLO into mergeable quantile sketches (no per-session list is ever
  materialized: ``report.sessions == ()``), and the sketch percentiles must
  agree with exact pooled aggregation within the documented
  ``relative_error`` bound;
* **run-until-converged** — with ``run_until_converged=True`` the runner
  executes sessions in batches and must stop well before the full scenario
  once the p99 startup-delay CI is tight.
"""

from __future__ import annotations

from conftest import report

from repro.exec.executor import ExecutorPolicy
from repro.obs import Timer
from repro.obs.convergence import ConvergenceCriterion
from repro.service import CapacityModel, FleetRunner, FleetSpec, SessionSpec

NUM_SESSIONS = 1000
NUM_PACKETS = 8
MAX_RATIO = 2.0
MIN_HIT_RATE = 0.99

CONFIGS = (
    SessionSpec(scheme="multi-tree", num_nodes=31, degree=2, num_packets=NUM_PACKETS),
    SessionSpec(scheme="multi-tree", num_nodes=31, degree=3, num_packets=NUM_PACKETS),
    SessionSpec(scheme="multi-tree", num_nodes=63, degree=2, num_packets=NUM_PACKETS),
    SessionSpec(scheme="multi-tree", num_nodes=63, degree=3, num_packets=NUM_PACKETS),
    SessionSpec(scheme="hypercube", num_nodes=32, degree=3, num_packets=NUM_PACKETS),
    SessionSpec(scheme="hypercube", num_nodes=64, degree=3, num_packets=NUM_PACKETS),
    SessionSpec(scheme="single-tree", num_nodes=31, degree=3, num_packets=NUM_PACKETS),
    SessionSpec(scheme="chain", num_nodes=16, degree=1, num_packets=NUM_PACKETS),
)

CAPACITY = CapacityModel(source_fanout=1e9, backbone=1e9)
SERIAL = ExecutorPolicy(mode="serial")


def test_fleet_scale_amortizes_compiles():
    fleet = FleetSpec(
        sessions=CONFIGS,
        num_sessions=NUM_SESSIONS,
        capacity=CAPACITY,
        arrival_rate=8.0,
        seed=42,
    )
    with Timer() as fleet_timer:
        result = FleetRunner(policy=SERIAL).run(fleet)
    fleet_report = result.report

    per_config = NUM_SESSIONS // len(CONFIGS)
    isolated_total = 0.0
    isolated_admitted = 0
    for i, kind in enumerate(CONFIGS):
        single = FleetSpec(
            sessions=(kind,),
            num_sessions=per_config,
            capacity=CAPACITY,
            arrival_rate=8.0,
            seed=100 + i,
        )
        with Timer() as timer:
            isolated = FleetRunner(policy=SERIAL).run(single)
        isolated_total += timer.elapsed
        isolated_admitted += isolated.report.admitted + isolated.report.degraded

    ratio = fleet_timer.elapsed / isolated_total

    assert fleet_report.num_sessions == NUM_SESSIONS
    assert fleet_report.rejected == 0, "capacity was sized to admit everything"
    assert isolated_admitted == NUM_SESSIONS
    assert fleet_report.cache_misses == len(CONFIGS)
    assert fleet_report.cache_hit_rate >= MIN_HIT_RATE, (
        f"hit rate {fleet_report.cache_hit_rate:.4f} below {MIN_HIT_RATE}"
    )
    assert ratio < MAX_RATIO, (
        f"fleet took {ratio:.2f}x the isolated runs (ceiling {MAX_RATIO}x)"
    )

    lines = [
        f"fleet scale ({NUM_SESSIONS} sessions, {len(CONFIGS)} configs, "
        f"P={NUM_PACKETS}, serial executor):",
        "",
        f"  one fleet run:               {fleet_timer.elapsed:7.3f}s "
        f"({fleet_report.cache_misses} compiles, "
        f"hit rate {fleet_report.cache_hit_rate:.3f})",
        f"  8 isolated per-config runs:  {isolated_total:7.3f}s "
        f"({len(CONFIGS)} compiles, private caches)",
        f"  ratio: {ratio:.2f}x (acceptance ceiling {MAX_RATIO:.0f}x)",
        "",
        f"  fleet SLOs: startup_p50={fleet_report.startup_p50} "
        f"startup_p99={fleet_report.startup_p99} "
        f"delay_p99={fleet_report.delay_p99} "
        f"buffer_p99={fleet_report.buffer_p99} "
        f"goodput={fleet_report.goodput_mean:.3f}",
    ]
    report(
        "fleet_scale",
        "\n".join(lines),
        elapsed=fleet_timer.elapsed + isolated_total,
        phases={
            "fleet_s": round(fleet_timer.elapsed, 6),
            "isolated_s": round(isolated_total, 6),
            "ratio": round(ratio, 4),
            "cache_hit_rate": round(fleet_report.cache_hit_rate, 4),
            "sessions": NUM_SESSIONS,
        },
    )


SKETCH_SESSIONS = 10_000
SKETCH_ERROR = 0.01


def test_sketch_aggregation_matches_exact_at_10k_sessions():
    """10k sessions stream through sketches; percentiles match exact."""

    def fleet_spec(aggregation: str) -> FleetSpec:
        return FleetSpec(
            sessions=CONFIGS,
            num_sessions=SKETCH_SESSIONS,
            capacity=CAPACITY,
            arrival_rate=16.0,
            seed=7,
            aggregation=aggregation,
            sketch_error=SKETCH_ERROR,
        )

    with Timer() as exact_timer:
        exact = FleetRunner(policy=SERIAL).run(fleet_spec("exact")).report
    with Timer() as sketch_timer:
        sketch = FleetRunner(policy=SERIAL).run(fleet_spec("sketch")).report

    # Bounded memory: sketch mode never materializes per-session SLOs.
    assert sketch.sessions == ()
    assert len(exact.sessions) == SKETCH_SESSIONS
    # Admission bookkeeping is aggregation-independent.
    assert sketch.num_sessions == exact.num_sessions == SKETCH_SESSIONS
    assert sketch.admitted == exact.admitted
    assert sketch.rejected == exact.rejected

    fields = ("startup_p50", "startup_p99", "delay_p50", "delay_p95",
              "delay_p99", "buffer_p99")
    drifts = {}
    for name in fields:
        exact_value = getattr(exact, name)
        sketch_value = getattr(sketch, name)
        # Documented bound: |sketch - exact| <= alpha * exact, plus 1 slot
        # for the report's integer rounding.
        tolerance = SKETCH_ERROR * exact_value + 1.0
        drift = abs(sketch_value - exact_value)
        assert drift <= tolerance, (
            f"{name}: sketch {sketch_value} vs exact {exact_value} "
            f"(drift {drift}, bound {tolerance:.2f})"
        )
        drifts[name] = drift

    lines = [
        f"sketch aggregation at {SKETCH_SESSIONS} sessions "
        f"(alpha={SKETCH_ERROR}, serial executor):",
        "",
        f"  exact pooled percentiles:  {exact_timer.elapsed:7.3f}s "
        f"({len(exact.sessions)} SLOs materialized)",
        f"  sketch streaming:          {sketch_timer.elapsed:7.3f}s "
        "(0 SLOs materialized)",
        "",
        "  field        exact  sketch  drift (bound = alpha*exact + 1)",
    ]
    for name in fields:
        lines.append(
            f"  {name:<12} {getattr(exact, name):>5} "
            f"{getattr(sketch, name):>6}  {drifts[name]:.0f}"
        )
    report(
        "fleet_sketch_10k",
        "\n".join(lines),
        elapsed=sketch_timer.elapsed,
        phases={
            "exact_s": round(exact_timer.elapsed, 6),
            "sketch_s": round(sketch_timer.elapsed, 6),
            "sessions": SKETCH_SESSIONS,
            "sketch_error": SKETCH_ERROR,
        },
    )


def test_run_until_converged_stops_early():
    """Convergence mode executes a fraction of the scenario and stops."""
    criterion = ConvergenceCriterion(
        quantile=99.0, rel_half_width=0.05, min_count=512, check_every=256
    )
    fleet = FleetSpec(
        sessions=CONFIGS,
        num_sessions=SKETCH_SESSIONS,
        capacity=CAPACITY,
        arrival_rate=16.0,
        seed=7,
        aggregation="sketch",
        sketch_error=SKETCH_ERROR,
        run_until_converged=True,
        convergence=criterion,
    )
    with Timer() as timer:
        result = FleetRunner(policy=SERIAL).run(fleet)

    state = result.convergence
    executed = result.executor_info["tasks"]
    assert state is not None and state.converged, (
        f"did not converge after {executed} sessions: {state}"
    )
    assert executed < SKETCH_SESSIONS // 2, (
        f"expected early stop, but executed {executed}/{SKETCH_SESSIONS}"
    )
    # The report covers exactly the executed arrival prefix.
    assert result.report.num_sessions == len(result.decisions)
    assert result.report.num_sessions >= executed

    lines = [
        f"run-until-converged (p99 startup delay, rel half-width "
        f"{criterion.rel_half_width}, batches of {criterion.check_every}):",
        "",
        f"  executed {executed} of {SKETCH_SESSIONS} sessions in "
        f"{result.executor_info['batches']} batches ({timer.elapsed:.3f}s)",
        f"  p99 estimate {state.estimate:.0f} in "
        f"[{state.ci_lower:.0f}, {state.ci_upper:.0f}] "
        f"(half-width {state.half_width:.2f} <= "
        f"target {state.target_half_width:.2f})",
    ]
    report(
        "fleet_converged_early_stop",
        "\n".join(lines),
        elapsed=timer.elapsed,
        phases={
            "executed": executed,
            "total": SKETCH_SESSIONS,
            "batches": result.executor_info["batches"],
        },
    )
