"""Tests for the round-robin transmission schedule (§2.2.3), including the
paper's Figure 2 worked example (node 6's receive/send timetable)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import ScheduleError
from repro.trees.forest import MultiTreeForest
from repro.trees.schedule import (
    LIVE_PREBUFFERED,
    ScheduleParams,
    arrival_trace,
    first_arrival_slots,
    pipelined_live_collisions,
    slot_transmissions,
)


@pytest.fixture(scope="module")
def structured15():
    return MultiTreeForest.construct(15, 3, "structured")


@pytest.fixture(scope="module")
def greedy15():
    return MultiTreeForest.construct(15, 3, "greedy")


class TestFirstArrivals:
    def test_root_children_by_child_index(self, structured15):
        # S sends to child r in slots ≡ r (mod d): positions 1..3 receive the
        # tree's first packet at slots 0, 1, 2.
        first = first_arrival_slots(structured15.trees[0])
        assert first[1] == 0
        assert first[2] == 1
        assert first[3] == 2

    def test_reception_slot_congruence(self, structured15):
        for tree in structured15.trees:
            first = first_arrival_slots(tree)
            for position, slot in first.items():
                assert slot % 3 == (position - 1) % 3

    def test_paper_example_transmissions(self, structured15):
        # §2.2.3: "node 1 will send packet 0 to node 5 in slot 1, node 6 in
        # slot 2 and node 4 in slot 3" — i.e. its children receive at 1, 2, 3.
        first = first_arrival_slots(structured15.trees[0])
        assert first[5] == 1  # node 5 is at position 5
        assert first[6] == 2
        assert first[4] == 3

    def test_monotone_in_depth(self, structured15):
        for tree in structured15.trees:
            first = first_arrival_slots(tree)
            for position in range(2, tree.size + 1):
                parent = (position - 1) // 3
                if parent >= 1:
                    assert first[position] > first[parent]

    def test_hop_gap_at_most_d(self, structured15):
        for tree in structured15.trees:
            first = first_arrival_slots(tree)
            for position in range(1, tree.size + 1):
                parent = (position - 1) // 3
                parent_slot = -1 if parent == 0 else first[parent]
                assert 1 <= first[position] - parent_slot <= 3

    def test_latency_shifts_arrivals(self, structured15):
        base = first_arrival_slots(structured15.trees[0])
        slow = first_arrival_slots(structured15.trees[0], latency=2)
        for position in base:
            assert slow[position] >= base[position] + 1


class TestArrivalTrace:
    def test_paper_node1(self, structured15):
        trace = arrival_trace(structured15, 3)
        assert trace[1] == {0: 0, 1: 2, 2: 1}

    def test_packets_arrive_d_apart_per_tree(self, structured15):
        trace = arrival_trace(structured15, 12)
        for node in structured15.real_nodes:
            for packet in range(12 - 3):
                assert trace[node][packet + 3] == trace[node][packet] + 3

    def test_no_two_packets_same_slot(self, structured15):
        trace = arrival_trace(structured15, 12)
        for node, arrivals in trace.items():
            slots = list(arrivals.values())
            assert len(slots) == len(set(slots)), f"node {node} receive collision"

    def test_live_prebuffer_adds_exactly_d(self, structured15):
        base = arrival_trace(structured15, 6)
        live = arrival_trace(structured15, 6, ScheduleParams(mode=LIVE_PREBUFFERED))
        for node in structured15.real_nodes:
            for packet in range(6):
                assert live[node][packet] == base[node][packet] + 3

    def test_bad_packet_count(self, structured15):
        with pytest.raises(ScheduleError):
            arrival_trace(structured15, 0)


class TestSlotTransmissions:
    def test_source_sends_d_per_slot(self, structured15):
        for slot in range(9):
            txs = slot_transmissions(structured15, slot)
            source_sends = [tx for tx in txs if tx.sender == 0]
            assert len(source_sends) == 3
            assert {tx.tree for tx in source_sends} == {0, 1, 2}

    def test_packet_tree_residue(self, structured15):
        for slot in range(12):
            for tx in slot_transmissions(structured15, slot):
                assert tx.packet % 3 == tx.tree

    def test_receivers_unique_per_slot(self, structured15):
        for slot in range(15):
            txs = slot_transmissions(structured15, slot)
            receivers = [tx.receiver for tx in txs]
            assert len(receivers) == len(set(receivers))

    def test_senders_unit_capacity(self, structured15):
        for slot in range(15):
            txs = slot_transmissions(structured15, slot)
            senders = [tx.sender for tx in txs if tx.sender != 0]
            assert len(senders) == len(set(senders))

    def test_live_mode_idles_before_prebuffer(self, structured15):
        params = ScheduleParams(mode=LIVE_PREBUFFERED)
        assert slot_transmissions(structured15, 0, params) == []
        assert slot_transmissions(structured15, 2, params) == []
        assert slot_transmissions(structured15, 3, params)

    def test_dummy_positions_skipped(self):
        forest = MultiTreeForest.construct(13, 3)  # two dummies (ids 14, 15)
        for slot in range(12):
            for tx in slot_transmissions(forest, slot):
                assert tx.receiver <= 13
                assert tx.sender <= 13


class TestFigure2:
    """Figure 2: receiving and sending schedules of node id 6 (N=15, d=3)."""

    def test_node6_receive_slots_structured(self, structured15):
        # Node 6 occupies positions 6, 2, 10 in T_0, T_1, T_2: its reception
        # slots are ≡ 2, 1, 0 (mod 3) respectively — one tree per residue,
        # exactly the three links drawn in Figure 2(a).
        residues = {
            tree.index: (tree.position_of(6) - 1) % 3 for tree in structured15.trees
        }
        assert residues == {0: 2, 1: 1, 2: 0}

    def test_node6_parents_structured(self, structured15):
        # Figure 2(a): node 6 receives from node 1 (T_0), S... the parents are
        # position-determined; verify against the layout.
        parents = [tree.parent_of(6) for tree in structured15.trees]
        assert parents == [1, None, 11]

    def test_node6_sends_only_in_interior_tree(self, structured15):
        # Node 6 is interior only in T_1 (position 2): all its sends happen
        # there, to children at positions 7, 8, 9 = nodes 11, 12, 1.
        interior = [t.index for t in structured15.trees if t.is_interior(6)]
        assert interior == [1]
        assert structured15.trees[1].children_of(6) == [11, 12, 1]

    def test_node6_greedy_positions(self, greedy15):
        # Greedy: node 6 at positions 6, 2, 10 as well (Figure 2(b) shows the
        # same slot pattern with different neighbors).
        parents = [tree.parent_of(6) for tree in greedy15.trees]
        assert parents[1] is None or parents[1] in range(1, 16)
        residues = sorted((t.position_of(6) - 1) % 3 for t in greedy15.trees)
        assert residues == [0, 1, 2]


class TestPipelinedLiveVariant:
    def test_greedy_construction_collides_everywhere(self, greedy15):
        # Shifting tree T_k by k slots makes every greedy node's reception
        # residues identical across trees (p_i - k + k = p_i): maximal
        # collisions — the reason the paper calls this variant hard to analyze.
        assert pipelined_live_collisions(greedy15) == 15 * 2

    def test_structured_construction_also_collides(self, structured15):
        assert pipelined_live_collisions(structured15) > 0


class TestScheduleParams:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ScheduleError):
            ScheduleParams(mode="bogus")

    def test_bad_latency_rejected(self):
        with pytest.raises(ScheduleError):
            ScheduleParams(latency=0)
