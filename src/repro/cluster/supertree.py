"""Construction of the backbone "super-tree" τ over clusters (Section 2.1).

Step 1 builds a *tight* tree over the per-cluster super nodes ``S_1 .. S_K``:
the source ``S`` is the root with up to ``D`` children, every other interior
node has up to ``D - 1`` children (one unit of its capacity-``D`` send budget
is reserved for its local ``S'_i``), and levels fill left to right so at most
one interior node is short of children, in the next-to-last layer.  Step 2
hangs ``S'_i`` off ``S_i``; Step 3 roots the intra-cluster construction at
``S'_i`` (handled by :mod:`repro.cluster.protocol`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import ConstructionError

__all__ = ["SuperTree", "build_supertree", "backbone_depth_bound"]


@dataclass(frozen=True)
class SuperTree:
    """The backbone tree over clusters.

    Attributes:
        num_clusters: ``K``.
        source_degree: ``D`` (root fan-out; interior fan-out is ``D - 1``).
        parent: cluster index -> parent cluster index, or -1 when the parent
            is the source ``S``.  Clusters are indexed ``0 .. K-1`` in
            breadth-first order.
    """

    num_clusters: int
    source_degree: int
    parent: tuple[int, ...]

    def children_of(self, cluster: int) -> list[int]:
        return [c for c, p in enumerate(self.parent) if p == cluster]

    def root_clusters(self) -> list[int]:
        """Clusters fed directly by the source."""
        return [c for c, p in enumerate(self.parent) if p == -1]

    def depth_of(self, cluster: int) -> int:
        """Inter-cluster hops from the source to ``cluster`` (>= 1)."""
        depth = 1
        node = cluster
        while self.parent[node] != -1:
            node = self.parent[node]
            depth += 1
        return depth

    @property
    def height(self) -> int:
        """Maximum backbone depth over clusters."""
        return max(self.depth_of(c) for c in range(self.num_clusters))

    def verify(self) -> None:
        """Check tightness: levels fill completely before the next begins."""
        D = self.source_degree
        depths = [self.depth_of(c) for c in range(self.num_clusters)]
        height = max(depths)
        capacity = D
        count_at = [0] * (height + 2)
        for depth in depths:
            count_at[depth] += 1
        for level in range(1, height):
            if count_at[level] != capacity:
                raise ConstructionError(
                    f"level {level} holds {count_at[level]} clusters, "
                    f"expected a full {capacity} (tree is not tight)"
                )
            capacity *= D - 1 if D > 1 else 1
        for cluster in range(self.num_clusters):
            limit = D if self.parent[cluster] == -1 else D - 1
            fanout = len(self.children_of(cluster))
            if fanout > limit:
                raise ConstructionError(
                    f"cluster {cluster} has fan-out {fanout} > limit {limit}"
                )


def build_supertree(num_clusters: int, source_degree: int) -> SuperTree:
    """Build the tight backbone tree τ (Step 1 of Section 2.1).

    Args:
        num_clusters: ``K >= 1``.
        source_degree: ``D >= 3`` in the paper (we accept ``D >= 2``; with
            ``D = 2`` interior nodes chain with fan-out 1).
    """
    if num_clusters < 1:
        raise ConstructionError(f"need at least one cluster, got {num_clusters}")
    if source_degree < 2:
        raise ConstructionError(f"source degree D must be >= 2, got {source_degree}")
    D = source_degree
    parent = [-1] * num_clusters
    # Breadth-first fill: the source feeds up to D clusters, each cluster
    # feeds up to D - 1 further clusters.
    frontier: list[int] = []
    next_cluster = 0
    for _ in range(min(D, num_clusters)):
        parent[next_cluster] = -1
        frontier.append(next_cluster)
        next_cluster += 1
    while next_cluster < num_clusters:
        new_frontier: list[int] = []
        for feeder in frontier:
            for _ in range(D - 1):
                if next_cluster >= num_clusters:
                    break
                parent[next_cluster] = feeder
                new_frontier.append(next_cluster)
                next_cluster += 1
        if not new_frontier and next_cluster < num_clusters:
            raise ConstructionError(
                f"cannot place cluster {next_cluster} with D={D}"
            )
        frontier = new_frontier
    return SuperTree(num_clusters, source_degree, tuple(parent))


def backbone_depth_bound(num_clusters: int, source_degree: int) -> float:
    """Theorem 1's backbone term exponent: ``log_{D-1} K`` hops."""
    import math

    if source_degree <= 2:
        return float(num_clusters)  # fan-out 1: the backbone is a chain
    if num_clusters == 1:
        return 1.0
    return math.log(num_clusters, source_degree - 1)
