"""REP006 — metric/event-name drift against the declared registry.

Dashboards, docs, and SLO monitors key on metric and event names as plain
strings: an emitter that says ``fleet.session`` where the dashboard reads
``fleet.sessions`` fails silently, forever.  :mod:`repro.obs.names` is the
single source of truth for every counter/gauge/histogram/sketch name and
:data:`repro.obs.events.EVENT_SCHEMA` for every tracer event; this pass
cross-checks each emission site in the project against them.

An emission site is a call of one of the registry methods
(``.counter`` / ``.gauge`` / ``.histogram`` / ``.sketch``) or an event
emitter (``.emit`` / ``._emit``) whose name argument the model can resolve
to a string — literals, module-level constants, ``from X import NAME``
bindings, and ``mod.NAME`` reads all resolve.  Names the resolver cannot
evaluate (computed f-strings, names built in loops) are skipped rather
than guessed; the engine's local ``emit()`` closure is likewise out of
scope.  Both registries are read **statically from the model** when the
declaring modules are in the scanned paths (so CI catches a scratch copy
whose registry diverged), falling back to importing them at analysis time.
"""

from __future__ import annotations

import ast

from repro.check.lint import LintViolation
from repro.check.model import ModuleInfo, ProjectModel

__all__ = [
    "RULE",
    "DESCRIPTION",
    "analyze",
    "declared_event_names",
    "declared_metric_names",
    "emitted_names",
    "unused_metric_names",
]

RULE = "REP006"
DESCRIPTION = (
    "metric/event name emitted that is not declared in the obs name "
    "registry (repro.obs.names / EVENT_SCHEMA)"
)

_METRIC_METHODS = frozenset({"counter", "gauge", "histogram", "sketch"})
#: Time-series emitters are also name-first.  ``.observe(value)`` on a
#: histogram handle never resolves (float arg) so it self-excludes;
#: ``.count`` additionally requires >= 2 positional args so that
#: ``some_str.count(sub)`` can never match.
_SERIES_METHODS = frozenset({"observe", "count"})
_EVENT_METHODS = frozenset({"emit", "_emit"})

_NAMES_MODULE = "repro.obs.names"
_EVENTS_MODULE = "repro.obs.events"


def _name_argument(call: ast.Call) -> ast.expr | None:
    if call.args:
        return call.args[0]
    for kw in call.keywords:
        if kw.arg == "name":
            return kw.value
    return None


def declared_metric_names(model: ProjectModel) -> frozenset[str] | None:
    """Every name declared in :mod:`repro.obs.names`.

    Extracted statically from the model when the module is in the scanned
    paths (every ``MetricSpec(...)`` construction's ``name``), otherwise by
    importing the installed registry.  None when neither works — the pass
    then skips metric checks instead of flagging everything.
    """
    names_module = model.get(_NAMES_MODULE)
    if names_module is not None:
        declared: set[str] = set()
        for node in ast.walk(names_module.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "MetricSpec"
            ):
                arg = _name_argument(node)
                if arg is not None:
                    value = model.resolve_str_constant(names_module, arg)
                    if value is not None:
                        declared.add(value)
        return frozenset(declared)
    try:
        from repro.obs.names import METRIC_NAMES
    except ImportError:
        return None
    return frozenset(METRIC_NAMES)


def declared_event_names(model: ProjectModel) -> frozenset[str] | None:
    """Every event name keyed in ``EVENT_SCHEMA`` (static, else imported)."""
    events_module = model.get(_EVENTS_MODULE)
    if events_module is not None:
        declared: set[str] = set()
        for node in ast.walk(events_module.tree):
            if isinstance(node, ast.Assign) and any(
                isinstance(t, ast.Name) and t.id == "EVENT_SCHEMA"
                for t in node.targets
            ):
                if isinstance(node.value, ast.Dict):
                    for key in node.value.keys:
                        if key is None:
                            continue
                        value = model.resolve_str_constant(events_module, key)
                        if value is not None:
                            declared.add(value)
        if declared:
            return frozenset(declared)
    try:
        from repro.obs.events import EVENT_SCHEMA
    except ImportError:
        return None
    return frozenset(EVENT_SCHEMA)


def emitted_names(
    model: ProjectModel,
) -> list[tuple[ModuleInfo, ast.Call, str, str]]:
    """Every resolvable emission site: ``(module, call, kind, name)``.

    ``kind`` is the method used (``counter``/``gauge``/.../``emit``).
    Sites whose name argument cannot be statically resolved are omitted.
    """
    sites: list[tuple[ModuleInfo, ast.Call, str, str]] = []
    for module in model:
        if module.name in (_NAMES_MODULE, _EVENTS_MODULE):
            continue  # the registries themselves are declarations
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            if func.attr not in (
                _METRIC_METHODS | _SERIES_METHODS | _EVENT_METHODS
            ):
                continue
            if func.attr == "count" and len(node.args) < 2:
                continue
            arg = _name_argument(node)
            if arg is None:
                continue
            value = model.resolve_str_constant(module, arg)
            if value is not None:
                sites.append((module, node, func.attr, value))
    return sites


def unused_metric_names(model: ProjectModel) -> frozenset[str]:
    """Registry names no resolvable emission site references (dead names)."""
    declared = declared_metric_names(model) or frozenset()
    emitted = {
        name for _, _, kind, name in emitted_names(model)
        if kind not in _EVENT_METHODS
    }
    return frozenset(declared - emitted)


def analyze(model: ProjectModel) -> list[LintViolation]:
    """Flag every emission whose resolved name is off-registry."""
    metrics = declared_metric_names(model)
    events = declared_event_names(model)
    violations: list[LintViolation] = []
    for module, call, kind, name in emitted_names(model):
        if kind not in _EVENT_METHODS:
            declared, registry = metrics, "repro.obs.names"
        else:
            declared, registry = events, "EVENT_SCHEMA (repro.obs.events)"
        if declared is None or name in declared:
            continue
        violations.append(
            LintViolation(
                rule=RULE, path=module.path,
                line=call.lineno, col=call.col_offset,
                message=(
                    f"{kind}() emits '{name}', which is not declared in "
                    f"{registry}; register it or fix the drifted name"
                ),
            )
        )
    return violations
