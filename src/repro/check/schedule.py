"""Static model checking of compiled schedules (``repro check``).

:func:`check_schedule` certifies a :class:`~repro.exec.compiler.CompiledSchedule`
against the paper's communication model and theorem bounds **without running
the engine**: every invariant of :mod:`repro.check.invariants` is evaluated
over one precomputed fact table, and the findings come back as structured
:class:`~repro.check.invariants.Violation` records inside a
:class:`CheckReport`.

Three entry points, one per layer:

* :func:`check_schedule` — check an in-memory compiled schedule;
* :func:`check_config` — compile (through the content-addressed cache) and
  check one ``(scheme, N, d, P)`` configuration;
* :func:`smoke_grid` — sweep :data:`~repro.exec.compiler.COMPILABLE_SCHEMES`
  over an ``N x d`` grid, the CI gate behind ``repro check --grid``.

Every violation is counted on the active metrics registry as
``check.violations{rule=...}``, so instrumented runs surface checker
findings through the normal observability path.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Callable, Iterator, Sequence
from dataclasses import dataclass, field

from repro.core.errors import ReproError
from repro.core.protocol import StreamingProtocol
from repro.exec.cache import ScheduleCache
from repro.exec.compiler import (
    COMPILABLE_SCHEMES,
    CompiledSchedule,
    build_protocol,
    compile_schedule,
)
from repro.check.invariants import (
    RULES,
    ScheduleFacts,
    Violation,
    check_buffer_bound,
    check_causality,
    check_coverage,
    check_delay_bound,
    check_duplicate_delivery,
    check_playability,
    check_recv_capacity,
    check_send_capacity,
    check_well_formed,
)
from repro.obs.registry import active_registry

__all__ = [
    "DEFAULT_GRID_NODES",
    "DEFAULT_GRID_DEGREES",
    "CheckReport",
    "check_schedule",
    "check_config",
    "smoke_grid",
]

#: The CI smoke grid (``repro check --grid`` defaults).
DEFAULT_GRID_NODES: tuple[int, ...] = (15, 127, 1023)
DEFAULT_GRID_DEGREES: tuple[int, ...] = (2, 3)

#: Evaluation order of the invariants (structural first, then global).
_INVARIANTS: tuple[Callable[[ScheduleFacts], Iterator[Violation]], ...] = (
    check_well_formed,
    check_send_capacity,
    check_recv_capacity,
    check_causality,
    check_duplicate_delivery,
    check_coverage,
    check_playability,
    check_delay_bound,
    check_buffer_bound,
)


@dataclass(frozen=True, slots=True)
class CheckReport:
    """Outcome of one static schedule check.

    Attributes:
        description: human-readable identity of the checked schedule.
        num_slots / num_transmissions / num_nodes: schedule dimensions.
        num_packets: measured stream prefix ``P`` the global rules used.
        violations: retained findings, at most ``max_per_rule`` per rule in
            rule evaluation order (``counts`` holds the untruncated totals).
        counts: total findings per rule id, including truncated ones.
    """

    description: str
    num_slots: int
    num_transmissions: int
    num_nodes: int
    num_packets: int
    violations: tuple[Violation, ...]
    counts: dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.counts

    @property
    def num_violations(self) -> int:
        return sum(self.counts.values())

    def summary(self) -> str:
        """One line: ``OK`` or the per-rule violation totals."""
        head = (
            f"{self.description}: {self.num_transmissions} transmissions, "
            f"{self.num_slots} slots, P={self.num_packets}"
        )
        if self.ok:
            return f"{head} — OK ({len(_INVARIANTS)} invariants hold)"
        parts = ", ".join(f"{rule}={n}" for rule, n in sorted(self.counts.items()))
        return f"{head} — {self.num_violations} violations ({parts})"

    def to_dict(self) -> dict[str, object]:
        return {
            "description": self.description,
            "num_slots": self.num_slots,
            "num_transmissions": self.num_transmissions,
            "num_nodes": self.num_nodes,
            "num_packets": self.num_packets,
            "ok": self.ok,
            "counts": dict(self.counts),
            "violations": [v.to_dict() for v in self.violations],
        }


def _derive_num_packets(protocol: StreamingProtocol, num_slots: int) -> int:
    """Largest prefix ``P`` with ``slots_for_packets(P) <= num_slots``.

    ``slots_for_packets`` is monotone in ``P``; exponential probe then binary
    search keeps this O(log P) protocol calls.
    """
    if num_slots < 1 or protocol.slots_for_packets(1) > num_slots:
        return 0
    hi = 1
    while protocol.slots_for_packets(hi * 2) <= num_slots:
        hi *= 2
    lo = hi  # slots_for_packets(lo) fits; search (lo, 2*lo)
    hi = hi * 2
    while lo + 1 < hi:
        mid = (lo + hi) // 2
        if protocol.slots_for_packets(mid) <= num_slots:
            lo = mid
        else:
            hi = mid
    return lo


def check_schedule(
    schedule: CompiledSchedule,
    *,
    protocol: StreamingProtocol | None = None,
    num_packets: int | None = None,
    max_per_rule: int = 25,
) -> CheckReport:
    """Statically verify ``schedule`` against every invariant.

    Args:
        schedule: the compiled schedule to certify.
        protocol: the protocol supplying capacities and packet availability.
            Defaults to rebuilding it from ``schedule.key``; ad-hoc schedules
            (``compile_protocol`` without a key) must pass one explicitly.
        num_packets: measured stream prefix for the coverage/playback rules.
            Defaults to the largest prefix the compiled horizon guarantees
            (the inverse of ``slots_for_packets``).
        max_per_rule: findings retained per rule (totals are always exact).
    """
    if protocol is None:
        key = schedule.key
        if key is None:
            raise ReproError(
                "schedule has no key; pass the protocol it was compiled from"
            )
        protocol = build_protocol(
            key.scheme, key.num_nodes, key.degree,
            construction=key.construction if key.scheme == "multi-tree" else "structured",
            mode=key.mode if key.scheme == "multi-tree" else "prerecorded",
            latency=key.latency,
        )
    if max_per_rule < 1:
        raise ReproError(f"max_per_rule must be >= 1, got {max_per_rule}")
    if num_packets is None:
        num_packets = _derive_num_packets(protocol, schedule.num_slots)
    elif num_packets < 0:
        raise ReproError(f"num_packets must be non-negative, got {num_packets}")

    facts = ScheduleFacts(schedule, protocol, num_packets)
    kept: list[Violation] = []
    counts: Counter[str] = Counter()
    for invariant in _INVARIANTS:
        for violation in invariant(facts):
            counts[violation.rule] += 1
            if counts[violation.rule] <= max_per_rule:
                kept.append(violation)
    registry = active_registry()
    for rule, n in counts.items():
        registry.counter("check.violations", rule=rule).inc(n)

    key = schedule.key
    description = (
        f"{key.scheme} N={key.num_nodes} d={key.degree}"
        if key is not None
        else protocol.describe()
    )
    return CheckReport(
        description=description,
        num_slots=schedule.num_slots,
        num_transmissions=schedule.size,
        num_nodes=schedule.num_nodes,
        num_packets=num_packets,
        violations=tuple(kept),
        counts=dict(counts),
    )


def check_config(
    scheme: str,
    num_nodes: int,
    degree: int = 3,
    *,
    num_packets: int = 16,
    construction: str = "structured",
    mode: str = "prerecorded",
    latency: int = 1,
    cache: ScheduleCache | None = None,
    max_per_rule: int = 25,
) -> CheckReport:
    """Compile (through the cache) and check one configuration."""
    schedule = compile_schedule(
        scheme, num_nodes, degree,
        num_packets=num_packets, construction=construction,
        mode=mode, latency=latency, cache=cache,
    )
    return check_schedule(
        schedule, num_packets=num_packets, max_per_rule=max_per_rule
    )


def smoke_grid(
    *,
    schemes: Sequence[str] = COMPILABLE_SCHEMES,
    nodes: Sequence[int] = DEFAULT_GRID_NODES,
    degrees: Sequence[int] = DEFAULT_GRID_DEGREES,
    num_packets: int = 16,
    cache: ScheduleCache | None = None,
) -> list[CheckReport]:
    """Check every scheme over the ``nodes x degrees`` grid.

    Degree-insensitive schemes (hypercube, chain) are checked once per
    population — their schedules ignore ``d``, so repeating the check would
    only restate the same certificate.
    """
    reports: list[CheckReport] = []
    for scheme in schemes:
        degree_axis: Sequence[int] = degrees
        if scheme in ("hypercube", "chain"):
            degree_axis = degrees[:1]
        for n in nodes:
            for d in degree_axis:
                reports.append(
                    check_config(
                        scheme, n, d, num_packets=num_packets, cache=cache
                    )
                )
    return reports


def _rule_catalogue() -> str:  # pragma: no cover - doc helper
    return "\n".join(f"{rule}: {text}" for rule, text in RULES.items())
