"""Fleet execution: run every admitted session, sharded across processes.

:class:`FleetRunner` turns a :class:`~repro.service.spec.FleetSpec` into a
:class:`~repro.service.slo.FleetSLOReport` in four steps:

1. **resolve** the scenario into concrete sessions (arrival slots, kinds,
   seeds, churn draws);
2. **admit** them through :class:`~repro.service.admission.SessionManager`,
   compiling each admitted configuration's schedule through the shared
   content-addressed :class:`~repro.exec.cache.ScheduleCache` to learn its
   true horizon — identical ``(scheme, N, d, ...)`` configs compile once per
   fleet, not once per session (the amortization the acceptance benchmark
   measures);
3. **execute** admitted sessions with the :class:`~repro.exec.SweepExecutor`
   process pool — the token-indexed schedule dict ships once per worker as
   the pool payload, each session replays engine-free under its own loss
   mask, and per-worker metric snapshots merge back into the caller's
   registry;
4. **aggregate** per-session SLOs and admission decisions into the fleet
   report (exact pooled percentiles, reject rate, cache hit-rate).

Everything is deterministic in ``FleetSpec.seed`` regardless of worker count.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exec.cache import ScheduleCache
from repro.exec.compiler import compile_schedule
from repro.exec.executor import ExecutorPolicy, SweepExecutor, worker_payload
from repro.exec.replay import bernoulli_mask, replay_arrivals
from repro.obs.registry import MetricsRegistry, active_registry, use_registry
from repro.service.admission import AdmissionDecision, SessionManager
from repro.service.slo import FleetSLOReport, SessionSLO, aggregate_fleet, score_session
from repro.service.spec import FleetSpec, ResolvedSession, SessionSpec

__all__ = ["FleetRunner", "FleetRunResult", "fleet_session_task"]


def fleet_session_task(task) -> SessionSLO:
    """Executor worker: replay one admitted session and score its SLO.

    Task tuple: ``(session_id, label, status, token, seed, drop_rate,
    num_packets, wait_slots, horizon, abr_profile)``.  The token-indexed
    schedule dict arrives via :func:`~repro.exec.executor.worker_payload`;
    the loss mask is deterministic in the session seed, so results do not
    depend on which worker (or how many) ran the session.

    When ``abr_profile`` is set, the worker additionally plays the session
    through a deterministic ABR playback loop (one chunk per measured
    packet) against the named bandwidth profile, seeded by the session seed,
    and attaches the resulting QoE metrics to the SLO.
    """
    (
        session_id, label, status, token, seed,
        drop_rate, num_packets, wait_slots, horizon, abr_profile,
    ) = task
    schedule = worker_payload()[token]
    mask = bernoulli_mask(schedule, drop_rate, seed)
    arrivals = replay_arrivals(schedule, num_slots=horizon, drop_mask=mask)
    slo = score_session(
        arrivals,
        session_id=session_id,
        label=label,
        num_packets=num_packets,
        num_slots=horizon,
        wait_slots=wait_slots,
        status=status,
    )
    registry = active_registry()
    if abr_profile is not None:
        from dataclasses import replace

        from repro.abr import AbrSessionSpec, build_profile, collect_qoe, run_session

        abr_spec = AbrSessionSpec(num_chunks=num_packets)
        trace = build_profile(
            abr_profile,
            max(64, num_packets * abr_spec.chunk_slots),
            seed=seed,
        )
        qoe = collect_qoe(run_session(abr_spec, trace))
        slo = replace(slo, qoe=qoe.to_dict())
        registry.counter("fleet.abr_sessions", tier=qoe.tier).inc()
    registry.counter("fleet.sessions_replayed", label=label).inc()
    registry.histogram("fleet.startup_delay").observe(slo.startup_delay)
    registry.histogram("fleet.rebuffer_ratio").observe(slo.rebuffer_ratio)
    return slo


@dataclass(frozen=True, slots=True)
class FleetRunResult:
    """Everything a fleet run produced.

    Attributes:
        report: the aggregated :class:`~repro.service.slo.FleetSLOReport`.
        decisions: per-session admission outcomes, in arrival order.
        sessions: the resolved scenario the run executed.
        executor_info: how the execution fanned out
            (:attr:`SweepExecutor.last_run`).
    """

    report: FleetSLOReport
    decisions: tuple[AdmissionDecision, ...]
    sessions: tuple[ResolvedSession, ...]
    executor_info: dict


class FleetRunner:
    """Execute fleet scenarios against a shared schedule cache.

    Args:
        cache: schedule cache shared across the fleet (a private in-process
            cache by default; pass one with a disk layer to amortize across
            runs too).
        policy: executor fan-out policy (worker count / serial / parallel).
        registry: metrics registry the run reports into (the active registry
            by default); admission counters, cache traffic, and merged worker
            snapshots all land here.
        tracer: optional :class:`~repro.obs.EventTracer` receiving
            ``session_*`` admission events.
    """

    def __init__(
        self,
        *,
        cache: ScheduleCache | None = None,
        policy: ExecutorPolicy | None = None,
        registry: MetricsRegistry | None = None,
        tracer=None,
    ) -> None:
        self.cache = cache if cache is not None else ScheduleCache(capacity=64)
        self.policy = policy if policy is not None else ExecutorPolicy()
        self.registry = registry
        self.tracer = tracer
        #: Cache traffic of the last :meth:`run` (one lookup per admission).
        self.cache_hits = 0
        self.cache_misses = 0

    # ------------------------------------------------------------------ build
    def _compile(self, spec: SessionSpec, degree: int, schedules: dict):
        """Compile one configuration through the shared cache.

        Returns ``(token, schedule)`` and tallies the hit/miss — exactly one
        cache lookup per admitted session, so the fleet hit-rate directly
        measures compile amortization.
        """
        provenance: dict = {}
        schedule = compile_schedule(
            spec.scheme,
            spec.num_nodes,
            degree,
            num_packets=spec.num_packets,
            construction=spec.construction,
            mode=spec.mode,
            latency=spec.latency,
            cache=self.cache,
            provenance=provenance,
        )
        if provenance["cache"] == "miss":
            self.cache_misses += 1
        else:
            self.cache_hits += 1
        token = provenance["cache_token"]
        schedules[token] = schedule
        return token, schedule

    # -------------------------------------------------------------------- api
    def run(self, fleet: FleetSpec) -> FleetRunResult:
        """Resolve, admit, execute, and score one fleet scenario."""
        registry = self.registry if self.registry is not None else active_registry()
        self.cache_hits = 0
        self.cache_misses = 0
        schedules: dict[str, object] = {}
        tokens: dict[int, str] = {}
        sessions = fleet.resolve()

        def duration_of(session: ResolvedSession, degree: int) -> int:
            token, schedule = self._compile(session.spec, degree, schedules)
            tokens[session.session_id] = token
            horizon = schedule.num_slots
            if session.leave_fraction is not None:
                # Churned viewer: capacity (and the SLO window) only cover
                # the watched prefix.
                horizon = max(1, int(session.leave_fraction * horizon))
            return horizon

        manager = SessionManager(
            fleet.capacity,
            policy=fleet.policy,
            max_queue_slots=fleet.max_queue_slots,
            min_degree=fleet.min_degree,
            tracer=self.tracer,
        )
        with use_registry(registry):
            decisions = manager.admit_all(sessions, duration_of)

            tasks = []
            by_id = {s.session_id: s for s in sessions}
            for decision in decisions:
                if not decision.admitted:
                    continue
                session = by_id[decision.session_id]
                token = tokens[decision.session_id]
                full = schedules[token].num_slots
                horizon = decision.duration
                num_packets = session.spec.num_packets
                if horizon < full:
                    # Score only the packets the watched prefix can carry.
                    num_packets = max(1, int(num_packets * horizon / full))
                tasks.append(
                    (
                        decision.session_id,
                        session.spec.label,
                        decision.status,
                        token,
                        session.seed,
                        session.spec.drop_rate,
                        num_packets,
                        decision.wait_slots,
                        horizon,
                        session.spec.abr_profile,
                    )
                )

            executor = SweepExecutor(self.policy, registry=registry)
            slos = executor.map(fleet_session_task, tasks, payload=schedules)

            report = aggregate_fleet(
                decisions,
                slos,
                cache_hits=self.cache_hits,
                cache_misses=self.cache_misses,
            )
            registry.gauge("fleet.cache_hit_rate").set(report.cache_hit_rate)
        return FleetRunResult(
            report=report,
            decisions=tuple(decisions),
            sessions=sessions,
            executor_info=dict(executor.last_run),
        )
