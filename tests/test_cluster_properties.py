"""Randomized property testing of the full clustered system."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.analysis import analyze_clustered, per_cluster_qos
from repro.cluster.protocol import ClusteredStreamingProtocol
from repro.core.engine import simulate


@st.composite
def cluster_configs(draw):
    num_clusters = draw(st.integers(1, 5))
    sizes = [draw(st.integers(2, 18)) for _ in range(num_clusters)]
    schemes = [
        draw(st.sampled_from(["multi-tree", "hypercube"])) for _ in range(num_clusters)
    ]
    source_degree = draw(st.integers(2, 4))
    degree = draw(st.integers(2, 3))
    t_c = draw(st.integers(1, 8))
    return sizes, schemes, source_degree, degree, t_c


class TestClusterProperties:
    @given(cluster_configs())
    @settings(max_examples=20, deadline=None)
    def test_every_configuration_streams_hiccup_free(self, config):
        sizes, schemes, source_degree, degree, t_c = config
        protocol = ClusteredStreamingProtocol(
            sizes,
            source_degree=source_degree,
            degree=degree,
            inter_cluster_latency=t_c,
            cluster_schemes=schemes,
        )
        packets = 5
        # The strict engine validates capacities/causality on every slot.
        trace = simulate(protocol, protocol.slots_for_packets(packets))
        for node in protocol.receiver_ids:
            assert set(range(packets)).issubset(trace.arrivals(node))

    @given(cluster_configs())
    @settings(max_examples=12, deadline=None)
    def test_qos_is_internally_consistent(self, config):
        sizes, schemes, source_degree, degree, t_c = config
        protocol = ClusteredStreamingProtocol(
            sizes,
            source_degree=source_degree,
            degree=degree,
            inter_cluster_latency=t_c,
            cluster_schemes=schemes,
        )
        qos = analyze_clustered(protocol, num_packets=5)
        assert qos.total_receivers == sum(sizes)
        assert qos.measured_avg_delay <= qos.measured_max_delay
        assert qos.measured_max_delay <= qos.predicted_max_delay
        trace = simulate(protocol, protocol.slots_for_packets(5))
        breakdown = per_cluster_qos(protocol, trace, num_packets=5)
        assert max(r["max_delay"] for r in breakdown) == qos.measured_max_delay

    @given(cluster_configs(), st.integers(2, 4))
    @settings(max_examples=10, deadline=None)
    def test_larger_tc_never_helps(self, config, extra):
        sizes, schemes, source_degree, degree, t_c = config

        def run(latency):
            protocol = ClusteredStreamingProtocol(
                sizes,
                source_degree=source_degree,
                degree=degree,
                inter_cluster_latency=latency,
                cluster_schemes=schemes,
            )
            return analyze_clustered(protocol, num_packets=4).measured_max_delay

        assert run(t_c) <= run(t_c + extra)
