"""Churn traces for the dynamics ablation (the paper's omitted simulations).

The appendix motivates the lazy maintenance variants with the
delete-then-add sequence ("the addition of a new node will force us to undo
swaps made during the deletion"); these generators produce that adversarial
pattern plus random and flash-crowd traces for the churn bench.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.errors import ConstructionError

__all__ = ["ChurnEvent", "alternating_trace", "random_trace", "flash_crowd_trace", "apply_trace"]


@dataclass(frozen=True, slots=True)
class ChurnEvent:
    """One churn event: ``kind`` is ``"add"`` or ``"delete"``.

    ``target`` selects the victim for deletions: ``"any"`` (uniform),
    ``"interior"`` (a node that is interior somewhere), or ``"leaf"``
    (an all-leaf node).  Additions ignore it.
    """

    kind: str
    target: str = "any"

    def __post_init__(self) -> None:
        if self.kind not in ("add", "delete"):
            raise ConstructionError(f"unknown churn kind {self.kind!r}")
        if self.target not in ("any", "interior", "leaf"):
            raise ConstructionError(f"unknown churn target {self.target!r}")


def alternating_trace(length: int, *, target: str = "any") -> list[ChurnEvent]:
    """delete, add, delete, add, ... — the paper's lazy-motivation worst case."""
    if length < 1:
        raise ConstructionError(f"trace length must be >= 1, got {length}")
    return [
        ChurnEvent("delete" if i % 2 == 0 else "add", target) for i in range(length)
    ]


def random_trace(
    length: int, *, departure_prob: float = 0.5, seed: int | None = None
) -> list[ChurnEvent]:
    """IID arrivals/departures."""
    if not 0 <= departure_prob <= 1:
        raise ConstructionError(f"departure_prob must be in [0, 1], got {departure_prob}")
    rng = np.random.default_rng(seed)
    return [
        ChurnEvent("delete" if rng.random() < departure_prob else "add")
        for _ in range(length)
    ]


def flash_crowd_trace(arrivals: int, departures: int) -> list[ChurnEvent]:
    """A burst of arrivals followed by a burst of departures."""
    if arrivals < 0 or departures < 0:
        raise ConstructionError("arrival/departure counts must be non-negative")
    return [ChurnEvent("add")] * arrivals + [ChurnEvent("delete")] * departures


def apply_trace(forest, trace, *, seed: int | None = None, verify_each: bool = False):
    """Run a churn trace against a :class:`~repro.trees.dynamics.DynamicForest`.

    Deletions pick their victim by the event's ``target`` policy using ``seed``.
    Returns the list of :class:`~repro.trees.dynamics.ChurnReport` outcomes.
    Events that cannot apply (deleting below 1 node) are skipped.
    """
    rng = np.random.default_rng(seed)
    reports = []
    for event in trace:
        if event.kind == "add":
            _, report = forest.add_node()
        else:
            if forest.num_nodes <= 1:
                continue
            victim = _pick_victim(forest, event.target, rng)
            if victim is None:
                continue
            report = forest.delete_node(victim)
        if verify_each:
            forest.verify()
        reports.append(report)
    return reports


def _pick_victim(forest, target: str, rng) -> int | None:
    live = sorted(forest.real_ids)
    if target == "any":
        return int(rng.choice(live)) if live else None
    interior = {
        node
        for layout in forest.layouts()
        for node in layout[: forest.interior]
        if node >= 0
    }
    pool = (
        [n for n in live if n in interior]
        if target == "interior"
        else [n for n in live if n not in interior]
    )
    if not pool:
        return None
    return int(rng.choice(pool))
