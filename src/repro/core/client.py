"""A slot-by-slot playback client with pluggable start policies.

The analyses in :mod:`repro.core.playback` compute delay/buffer quantities in
closed form from arrival traces; :class:`PlaybackClient` is the imperative
counterpart — it replays a node's arrivals through a real
:class:`~repro.core.buffer.PlaybackBuffer`, deciding *online* when to start
playback.  Useful for studying policies a real receiver could implement
without oracle knowledge:

* ``FixedStart(D)`` — begin consuming in slot ``D`` regardless (the paper's
  analyses assume a known-safe ``D`` such as ``a(i)`` or ``h*d``);
* ``WindowStart(d)`` — begin once one packet from each of the ``d`` trees
  (i.e. packets ``0..d-1``) has arrived — Observation 2's online rule;
* ``BufferStart(B)`` — begin once ``B`` packets are resident, a common
  pragmatic heuristic (and demonstrably unsafe in the worst case).
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass

from repro.core.buffer import PlaybackBuffer
from repro.core.errors import ReproError

__all__ = [
    "StartPolicy",
    "FixedStart",
    "WindowStart",
    "BufferStart",
    "PlaybackClient",
    "PlaybackRun",
    "replay",
]


class StartPolicy:
    """Decides, online, the first slot in which to consume."""

    def should_start(self, slot: int, buffer: PlaybackBuffer) -> bool:
        raise NotImplementedError


@dataclass(frozen=True, slots=True)
class FixedStart(StartPolicy):
    """Start consuming in slot ``start_slot`` unconditionally."""

    start_slot: int

    def __post_init__(self) -> None:
        if self.start_slot < 0:
            raise ReproError(f"start_slot must be >= 0, got {self.start_slot}")

    def should_start(self, slot: int, buffer: PlaybackBuffer) -> bool:
        return slot >= self.start_slot


@dataclass(frozen=True, slots=True)
class WindowStart(StartPolicy):
    """Start once packets ``0 .. window-1`` are all resident (Observation 2)."""

    window: int

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ReproError(f"window must be >= 1, got {self.window}")

    def should_start(self, slot: int, buffer: PlaybackBuffer) -> bool:
        return all(p in buffer for p in range(self.window))


@dataclass(frozen=True, slots=True)
class BufferStart(StartPolicy):
    """Start once ``threshold`` packets are resident (pragmatic heuristic)."""

    threshold: int

    def __post_init__(self) -> None:
        if self.threshold < 1:
            raise ReproError(f"threshold must be >= 1, got {self.threshold}")

    def should_start(self, slot: int, buffer: PlaybackBuffer) -> bool:
        return buffer.occupancy >= self.threshold


@dataclass(frozen=True, slots=True)
class PlaybackRun:
    """Result of replaying one node's arrivals through a client.

    Attributes:
        start_slot: slot of the first consume attempt (-1 if never started).
        played: packets successfully consumed, in order.
        hiccups: consume attempts that found the next packet missing.
        peak_occupancy: high-water mark of the buffer.
    """

    start_slot: int
    played: tuple[int, ...]
    hiccups: int
    peak_occupancy: int


class PlaybackClient:
    """Replays an arrival trace slot by slot under a start policy."""

    def __init__(self, policy: StartPolicy, *, capacity: int | None = None) -> None:
        self.policy = policy
        self.buffer = PlaybackBuffer(capacity=capacity)
        self.started_at: int | None = None
        self.played: list[int] = []

    def step(self, slot: int, arrivals: list[int]) -> int | None:
        """Process one slot: ingest arrivals, maybe consume.

        Returns the packet played this slot, or None (not started / hiccup).
        """
        for packet in arrivals:
            self.buffer.insert(packet)
        if self.started_at is None and self.policy.should_start(slot, self.buffer):
            self.started_at = slot
        if self.started_at is None:
            return None
        packet = self.buffer.consume()
        if packet is not None:
            self.played.append(packet)
        return packet


def replay(
    arrivals: Mapping[int, int],
    policy: StartPolicy,
    *,
    horizon: int | None = None,
    capacity: int | None = None,
) -> PlaybackRun:
    """Run a full arrival trace through a client and summarize the outcome."""
    if horizon is None:
        horizon = (max(arrivals.values()) + len(arrivals) + 1) if arrivals else 0
    by_slot: dict[int, list[int]] = {}
    for packet, slot in arrivals.items():
        by_slot.setdefault(slot, []).append(packet)
    client = PlaybackClient(policy, capacity=capacity)
    total = len(arrivals)
    for slot in range(horizon):
        if len(client.played) >= total:
            break  # finite trace fully played: the stream has ended
        client.step(slot, sorted(by_slot.get(slot, ())))
    return PlaybackRun(
        start_slot=-1 if client.started_at is None else client.started_at,
        played=tuple(client.played),
        hiccups=client.buffer.hiccups,
        peak_occupancy=client.buffer.peak_occupancy,
    )
