"""Tests for the multi-tree delay/buffer analysis (Theorems 2 and 3)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import ConstructionError
from repro.trees.analysis import (
    all_playback_delays,
    analyze,
    average_delay,
    buffer_requirements,
    optimal_startup_delay,
    per_tree_delays,
    playback_delay,
    theorem2_bound,
    theorem2_height,
    theorem3_lower_bound,
    tree_delay,
    worst_case_delay,
)
from repro.trees.forest import MultiTreeForest
from repro.workloads.sweeps import complete_tree_populations


@pytest.fixture(scope="module")
def forest15():
    return MultiTreeForest.construct(15, 3, "structured")


class TestPerTreeDelays:
    def test_node1_delays(self, forest15):
        # Node 1 receives its first packets at slots 0, 2, 1 -> A = 1, 3, 2.
        assert per_tree_delays(forest15, 1) == [1, 3, 2]
        assert playback_delay(forest15, 1) == 3

    def test_tree_delay_accessor(self, forest15):
        assert tree_delay(forest15, 1, 0) == 1
        assert tree_delay(forest15, 1, 1) == 3

    def test_all_delays_consistent(self, forest15):
        delays = all_playback_delays(forest15)
        for node in forest15.real_nodes:
            assert delays[node] == playback_delay(forest15, node)

    def test_optimal_start_bounds(self, forest15):
        for node in forest15.real_nodes:
            optimal = optimal_startup_delay(forest15, node)
            paper = playback_delay(forest15, node)
            assert paper - 3 < optimal <= paper


class TestTheorem2:
    def test_height_formula(self):
        # Complete trees: N = 12 (d=3) has h = 2; N = 14 (d=2) has h = 3.
        assert theorem2_height(12, 3) == 2
        assert theorem2_height(14, 2) == 3
        assert theorem2_height(15, 3) == 3

    def test_bound_values(self):
        assert theorem2_bound(12, 3) == 6
        assert theorem2_bound(14, 2) == 6

    def test_complete_trees_meet_bound_exactly(self):
        # For complete trees the worst node (last position of T_0) achieves
        # T = h * d exactly.
        for d in (2, 3, 4):
            for n in complete_tree_populations(d, max_nodes=400):
                forest = MultiTreeForest.construct(n, d)
                assert worst_case_delay(forest) == theorem2_bound(n, d)

    @given(st.integers(2, 250), st.integers(2, 5))
    @settings(max_examples=80, deadline=None)
    def test_bound_holds_for_all_populations(self, n, d):
        for construction in ("structured", "greedy"):
            forest = MultiTreeForest.construct(n, d, construction)
            assert worst_case_delay(forest) <= theorem2_bound(n, d)

    def test_degree_one_rejected(self):
        with pytest.raises(ConstructionError):
            theorem2_bound(10, 1)


class TestTheorem3:
    def test_lower_bound_holds_on_complete_trees(self):
        for d in (2, 3):
            for n in complete_tree_populations(d, max_nodes=700):
                forest = MultiTreeForest.construct(n, d)
                measured = average_delay(forest)
                assert measured >= theorem3_lower_bound(n, d) - 1e-9

    def test_lower_bound_not_vacuous(self):
        # The bound is loose (the proof's |L_k| = d^(h-1) undercounts leaves)
        # but must remain a constant fraction of the measured average.
        n = complete_tree_populations(3, max_nodes=400)[-1]
        forest = MultiTreeForest.construct(n, 3)
        assert theorem3_lower_bound(n, 3) >= average_delay(forest) * 0.2

    def test_lower_bound_grows_with_population(self):
        values = [
            theorem3_lower_bound(n, 3)
            for n in complete_tree_populations(3, max_nodes=10_000)[1:]
        ]
        assert values == sorted(values)

    def test_degree_one_rejected(self):
        with pytest.raises(ConstructionError):
            theorem3_lower_bound(10, 1)


class TestBuffers:
    def test_node1_needs_three(self, forest15):
        # Paper §2.3: "a buffer size of 3 is sufficient for node 1".
        buffers = buffer_requirements(forest15)
        assert buffers[1] == 3

    def test_all_buffers_bounded_by_hd(self, forest15):
        h, d = forest15.height, forest15.degree
        assert all(b <= h * d for b in buffer_requirements(forest15).values())

    @given(st.integers(2, 120), st.integers(2, 4))
    @settings(max_examples=30, deadline=None)
    def test_hd_buffer_bound_property(self, n, d):
        forest = MultiTreeForest.construct(n, d)
        bound = forest.height * d
        assert all(b <= bound for b in buffer_requirements(forest).values())


class TestAnalyze:
    def test_summary_consistency(self):
        qos = analyze(40, 3)
        assert qos.num_nodes == 40
        assert qos.max_delay <= qos.theorem2_bound
        assert qos.avg_delay <= qos.max_delay
        assert qos.avg_delay >= 1
        assert qos.max_buffer <= qos.height * qos.degree
        assert qos.max_neighbors <= 2 * qos.degree

    def test_construction_choice_respected(self):
        a = analyze(40, 3, "structured", include_buffers=False)
        b = analyze(40, 3, "greedy", include_buffers=False)
        assert a.construction == "structured"
        assert b.construction == "greedy"
        # Both constructions share the same worst-case guarantee.
        assert a.theorem2_bound == b.theorem2_bound
