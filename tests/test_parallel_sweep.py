"""Tests for the sweep cell evaluators and their process-pool execution.

The v1 ``parallel_sweep`` wrapper was removed in v2.0; the cells now run
through :class:`repro.exec.executor.SweepExecutor` directly with the same
semantics (order-preserving, registry snapshot merging, serial fallback).
"""

from __future__ import annotations

import pytest

from repro.core.errors import ReproError
from repro.exec.executor import ExecutorPolicy, SweepExecutor
from repro.obs import MetricsRegistry
from repro.workloads.parallel import cascade_cell, default_workers, multi_tree_cell


def sweep(worker, tasks, *, max_workers=None, chunksize=8, registry=None):
    policy = ExecutorPolicy(max_workers=max_workers, chunksize=chunksize)
    return SweepExecutor(policy, registry=registry).map(worker, tasks)


class TestCells:
    def test_multi_tree_cell(self):
        n, d, delay = multi_tree_cell((100, 3))
        assert (n, d) == (100, 3)
        from repro.trees.analysis import worst_case_delay
        from repro.trees.forest import MultiTreeForest

        assert delay == worst_case_delay(MultiTreeForest.construct(100, 3))

    def test_cascade_cell(self):
        n, worst, avg = cascade_cell((50,))
        assert n == 50
        assert avg <= worst

    def test_parallel_sweep_wrapper_removed(self):
        with pytest.raises(ImportError):
            from repro.workloads.parallel import parallel_sweep  # noqa: F401


class TestRunner:
    def test_empty_tasks(self):
        assert sweep(multi_tree_cell, []) == []

    def test_serial_path(self):
        results = sweep(multi_tree_cell, [(20, 2), (20, 3)], max_workers=1)
        assert [r[:2] for r in results] == [(20, 2), (20, 3)]

    def test_parallel_matches_serial(self):
        tasks = [(n, d) for n in (20, 50, 90, 130) for d in (2, 3)]
        serial = sweep(multi_tree_cell, tasks, max_workers=1)
        parallel = sweep(multi_tree_cell, tasks, max_workers=2, chunksize=2)
        assert serial == parallel  # order-preserving and identical

    def test_registry_merges_worker_snapshots(self):
        tasks = [(20, 2), (20, 3), (50, 2), (50, 3)]
        registry = MetricsRegistry()
        results = sweep(
            multi_tree_cell, tasks, max_workers=2, chunksize=1, registry=registry
        )
        assert len(results) == len(tasks)
        cells = sum(
            row["value"]
            for row in registry.snapshot()["counters"]
            if row["name"] == "sweep.cells"
        )
        assert cells == len(tasks)
        hist = registry.histogram("sweep.delay", scheme="multi-tree", degree="2")
        assert hist.count == 2  # one observation per degree-2 cell

    def test_registry_merge_matches_serial(self):
        tasks = [(20, 2), (30, 2), (40, 2), (50, 2)]
        serial, parallel = MetricsRegistry(), MetricsRegistry()
        a = sweep(multi_tree_cell, tasks, max_workers=1, registry=serial)
        b = sweep(
            multi_tree_cell, tasks, max_workers=2, chunksize=1, registry=parallel
        )
        assert a == b
        assert serial.snapshot() == parallel.snapshot()

    def test_no_registry_means_raw_results(self):
        results = sweep(multi_tree_cell, [(20, 2)], max_workers=1)
        assert results == [(20, 2, results[0][2])]

    def test_invalid_workers(self):
        with pytest.raises(ReproError):
            sweep(multi_tree_cell, [(5, 2), (6, 2), (7, 2)], max_workers=0)

    def test_default_workers_positive(self):
        assert default_workers() >= 1
