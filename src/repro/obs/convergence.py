"""Online SLO-convergence detection for open-loop fleet runs.

The ROADMAP's steady-state mode runs a fleet not for a fixed session
count but *until the SLO estimate converges*.  "Converged" here means a
distribution-free confidence interval on the tracked quantile is narrow
relative to the estimate itself.

**Criterion.**  For quantile ``q`` of ``n`` observations, the classic
order-statistics CI brackets the true quantile between the sample ranks

    lower = floor(n*q - z * sqrt(n * q * (1 - q)))
    upper = ceil(n*q + z * sqrt(n * q * (1 - q)))

(clamped to ``[1, n]``), where ``z`` is the two-sided normal critical
value for the configured confidence level.  The value bounds at those
ranks come straight from the quantile sketch
(:meth:`repro.obs.sketch.QuantileSketch.quantile_at_rank`), so the CI
inherits the sketch's relative-error guarantee.  The run is **converged**
once ``n >= min_count`` and the CI half-width
``(upper_value - lower_value) / 2`` is at most
``rel_half_width * estimate``.  With a degenerate distribution the
half-width is 0 and convergence fires as soon as ``min_count`` is met.

Everything is deterministic — the normal critical value comes from
``statistics.NormalDist`` (no sampling, no bootstrap RNG), so the same
observation stream always converges at the same count.

Wiring: :class:`repro.service.runner.FleetRunner` feeds the detector
per-session p99-tracked delays between execution batches when
``FleetSpec.run_until_converged`` is set; see ``docs/TELEMETRY.md``.
"""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass
from typing import Any

from .sketch import QuantileSketch

__all__ = ["ConvergenceCriterion", "ConvergenceDetector", "ConvergenceState"]


@dataclass(frozen=True, slots=True)
class ConvergenceCriterion:
    """When to declare a quantile estimate converged.

    Args:
        quantile: tracked percentile in (0, 100), default p99.
        rel_half_width: converged when the CI half-width is at most this
            fraction of the estimate.
        confidence: two-sided confidence level of the order-statistics CI.
        min_count: never converge before this many observations.
        check_every: how many sessions the runner executes between checks
            (batch size of the convergence loop).
    """

    quantile: float = 99.0
    rel_half_width: float = 0.05
    confidence: float = 0.95
    min_count: int = 256
    check_every: int = 128

    def __post_init__(self) -> None:
        if not 0 < self.quantile < 100:
            raise ValueError(
                f"quantile must be in (0, 100), got {self.quantile}"
            )
        if self.rel_half_width <= 0:
            raise ValueError(
                f"rel_half_width must be > 0, got {self.rel_half_width}"
            )
        if not 0 < self.confidence < 1:
            raise ValueError(
                f"confidence must be in (0, 1), got {self.confidence}"
            )
        if self.min_count < 2:
            raise ValueError(f"min_count must be >= 2, got {self.min_count}")
        if self.check_every < 1:
            raise ValueError(
                f"check_every must be >= 1, got {self.check_every}"
            )

    def z_value(self) -> float:
        """Two-sided normal critical value for ``confidence``."""
        return statistics.NormalDist().inv_cdf(0.5 + self.confidence / 2.0)


@dataclass(frozen=True, slots=True)
class ConvergenceState:
    """One convergence check's outcome (:meth:`ConvergenceDetector.state`)."""

    converged: bool
    count: int
    estimate: float
    ci_lower: float
    ci_upper: float
    half_width: float
    target_half_width: float

    def row(self) -> dict[str, Any]:
        return {
            "converged": self.converged,
            "count": self.count,
            "estimate": self.estimate,
            "ci_lower": self.ci_lower,
            "ci_upper": self.ci_upper,
            "half_width": self.half_width,
            "target_half_width": self.target_half_width,
        }


class ConvergenceDetector:
    """Online detector of quantile-estimate convergence.

    Feed observations with :meth:`add` (or a whole merged shard sketch
    with :meth:`merge`), then ask :meth:`state`.  Deterministic: no RNG.
    """

    __slots__ = ("criterion", "_sketch", "_z")

    def __init__(
        self,
        criterion: ConvergenceCriterion | None = None,
        *,
        relative_error: float = 0.0,
    ) -> None:
        self.criterion = criterion if criterion is not None else ConvergenceCriterion()
        self._sketch = QuantileSketch(relative_error)
        self._z = self.criterion.z_value()

    @property
    def count(self) -> int:
        return self._sketch.count

    def add(self, value: float, count: int = 1) -> None:
        """Observe ``value`` ``count`` times."""
        self._sketch.add(value, count)

    def merge(self, sketch: QuantileSketch) -> None:
        """Fold a shard's sketch into the detector's population."""
        self._sketch.merge(sketch)

    def state(self) -> ConvergenceState:
        """Evaluate the criterion against everything observed so far."""
        crit = self.criterion
        n = self._sketch.count
        if n < 2:
            return ConvergenceState(
                converged=False, count=n, estimate=0.0,
                ci_lower=0.0, ci_upper=0.0,
                half_width=math.inf, target_half_width=0.0,
            )
        q = crit.quantile / 100.0
        estimate = self._sketch.quantile(crit.quantile)
        se = self._z * math.sqrt(n * q * (1.0 - q))
        lower_rank = max(1, math.floor(n * q - se))
        upper_rank = min(n, math.ceil(n * q + se))
        ci_lower = self._sketch.quantile_at_rank(lower_rank)
        ci_upper = self._sketch.quantile_at_rank(upper_rank)
        half_width = (ci_upper - ci_lower) / 2.0
        target = crit.rel_half_width * estimate
        converged = n >= crit.min_count and half_width <= target
        return ConvergenceState(
            converged=converged, count=n, estimate=estimate,
            ci_lower=ci_lower, ci_upper=ci_upper,
            half_width=half_width, target_half_width=target,
        )

    @property
    def converged(self) -> bool:
        return self.state().converged
