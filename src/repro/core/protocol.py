"""Protocol interface consumed by the slotted-time simulation engine.

A *protocol* is a deterministic streaming scheme: given the current slot and a
read-only view of which node holds which packets, it emits the set of
transmissions for that slot.  The engine validates each slot against the paper's
communication model (Section 2): every ordinary receiver sends at most one and
receives at most one packet per slot, while the source and super nodes may have
higher send capacity.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Iterable, Sequence
from typing import Protocol as TypingProtocol

from repro.core.packet import Transmission

__all__ = ["HoldingsView", "StreamingProtocol"]


class HoldingsView(TypingProtocol):
    """Read-only access to simulation state, passed to protocols each slot.

    Implemented by the engine; protocols that are *state-driven* (e.g. the
    hypercube exchange rule) query it, while *schedule-driven* protocols (the
    multi-tree round-robin) can ignore it entirely.
    """

    def holds(self, node: int, packet: int) -> bool:
        """True if ``node`` received ``packet`` in an earlier slot (forwardable now)."""
        ...

    def arrival_slot(self, node: int, packet: int) -> int | None:
        """Slot at whose end ``node`` received ``packet``, or None."""
        ...

    def packets_of(self, node: int) -> frozenset[int]:
        """All packets held (forwardable) by ``node`` at the current slot."""
        ...


class StreamingProtocol(ABC):
    """Base class for all streaming schemes driven by :class:`~repro.core.engine.SlottedEngine`.

    Subclasses define the overlay topology and per-slot transmission schedule.
    Node ids are arbitrary ints; ``source_ids`` are origin nodes that hold
    stream packets without receiving them over simulated links.
    """

    @property
    @abstractmethod
    def node_ids(self) -> Sequence[int]:
        """All receiver node ids participating in the scheme (excludes sources)."""

    @property
    @abstractmethod
    def source_ids(self) -> frozenset[int]:
        """Origin node ids that hold stream packets natively."""

    @abstractmethod
    def transmissions(self, slot: int, view: HoldingsView) -> Iterable[Transmission]:
        """Transmissions initiated during ``slot``."""

    def send_capacity(self, node: int) -> int:
        """Packets ``node`` may transmit per slot.  Default: 1 (ordinary receiver)."""
        return 1

    def recv_capacity(self, node: int) -> int:
        """Packets ``node`` may receive per slot.  Default: 1 (ordinary receiver)."""
        return 1

    def packet_available_slot(self, packet: int) -> int:
        """First slot in which a source may transmit ``packet``.

        Pre-recorded streams (the default) have every packet available from
        slot 0; live streams make packet ``j`` available from slot ``j``.
        """
        return 0

    def reset(self) -> None:
        """Return the protocol to its slot-0 state.

        The engine calls this at the start of every run so that stateful
        protocols (internal exchange models, RNGs, churn bookkeeping) can be
        simulated repeatedly.  Stateless protocols need not override it.
        """

    def describe(self) -> str:
        """One-line human-readable description used in reports."""
        return type(self).__name__
