"""Static verification layer: schedule model checking and project lint.

Two pillars, both engine-free:

* :mod:`repro.check.schedule` / :mod:`repro.check.invariants` — certify a
  :class:`~repro.exec.compiler.CompiledSchedule` against the paper's
  communication model (per-slot capacities, causal forwarding, exactly-once
  coverage) and the theorem bounds (Thm 2's ``h*d`` delay/buffer for the
  multi-tree scheme, the hypercube's 2-packet buffer, Prop 2's delay bound)
  without running a single simulated slot.  Exposed as ``repro check`` and
  as ``compile_schedule(..., verify=True)`` (verify-on-miss: a fresh compile
  must pass before it may enter the schedule cache).
* :mod:`repro.check.lint` — an AST lint (stdlib :mod:`ast` only) enforcing
  the project's determinism and error-handling discipline: seeded RNG only
  (REP001), wall-clock reads confined to ``repro/obs/`` (REP002), no bare
  ``assert`` in library code (REP003), no iteration over unordered set
  expressions where order feeds transmission emission (REP004).  Exposed as
  ``repro lint``.

``docs/CHECKS.md`` catalogues every invariant and lint rule with its paper
reference and rationale.
"""

from repro.check.invariants import RULES, ScheduleFacts, Violation
from repro.check.lint import (
    LINT_RULES,
    LintViolation,
    format_violations,
    lint_file,
    lint_paths,
    lint_source,
)
from repro.check.schedule import (
    DEFAULT_GRID_DEGREES,
    DEFAULT_GRID_NODES,
    CheckReport,
    check_config,
    check_schedule,
    smoke_grid,
)

__all__ = [
    "DEFAULT_GRID_DEGREES",
    "DEFAULT_GRID_NODES",
    "CheckReport",
    "LINT_RULES",
    "LintViolation",
    "RULES",
    "ScheduleFacts",
    "Violation",
    "check_config",
    "check_schedule",
    "format_violations",
    "lint_file",
    "lint_paths",
    "lint_source",
    "smoke_grid",
]
