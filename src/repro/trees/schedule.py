"""The round-robin transmission schedule of Section 2.2.3.

Packets are split across the ``d`` trees by residue: packet ``p`` travels down
tree ``T_{p mod d}``.  In slot ``t = m*d + r`` the source sends packet
``k + m*d`` to its ``r``-th child in every tree ``T_k`` (``d`` sends per slot),
and every interior node of every tree forwards the most recent packet it has
received in that tree to its ``r``-th child.  Children are numbered ``0..d-1``
left to right, so position ``q`` (child index ``(q-1) mod d``) receives packets
only in slots ``t ≡ q - 1 (mod d)`` — combined with the constructions'
position-congruence property this makes the schedule collision-free.

Two stream modes are supported:

* ``prerecorded`` — every packet is available at the source from slot 0
  (the paper's primary analysis setting);
* ``live_prebuffered`` — packet ``p`` is generated during slot ``p``; the
  source waits ``d`` slots, then replays the pre-recorded schedule shifted by
  ``d``, adding exactly ``d`` slots of delay for every node (the paper's
  recommended live adaptation).

The paper also sketches a *pipelined* live variant that shifts tree ``T_k``'s
schedule by ``k`` slots and notes it "is not easy to analyze"; indeed the shift
breaks the position-congruence guarantee and can schedule two receptions at one
node in the same slot.  :func:`pipelined_live_collisions` quantifies this.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.core.errors import ScheduleError
from repro.core.packet import Transmission
from repro.trees import positions as pos
from repro.trees.forest import SOURCE_ID, MultiTreeForest
from repro.trees.tree import StreamTree

__all__ = [
    "StreamMode",
    "PRERECORDED",
    "LIVE_PREBUFFERED",
    "first_arrival_slots",
    "arrival_trace",
    "slot_transmissions",
    "pipelined_live_collisions",
    "ScheduleParams",
]

StreamMode = str
PRERECORDED: StreamMode = "prerecorded"
LIVE_PREBUFFERED: StreamMode = "live_prebuffered"
_MODES = (PRERECORDED, LIVE_PREBUFFERED)


@dataclass(frozen=True, slots=True)
class ScheduleParams:
    """Schedule configuration.

    Attributes:
        mode: ``prerecorded`` or ``live_prebuffered``.
        latency: link latency in slots (``T_i``; the paper normalizes to 1).
    """

    mode: StreamMode = PRERECORDED
    latency: int = 1

    def __post_init__(self) -> None:
        if self.mode not in _MODES:
            raise ScheduleError(f"unknown stream mode {self.mode!r}; choose from {_MODES}")
        if self.latency < 1:
            raise ScheduleError(f"latency must be >= 1, got {self.latency}")


def _shift(params: ScheduleParams, degree: int) -> int:
    """Global slot shift: 0 for pre-recorded, d for the live prebuffer."""
    return degree if params.mode == LIVE_PREBUFFERED else 0


def first_arrival_slots(tree: StreamTree, *, latency: int = 1) -> dict[int, int]:
    """Slot (0-indexed, unshifted) at which each position receives its tree's
    *first* packet.

    Uses the recurrence ``a(q) = `` smallest slot ``> a(parent(q)) + latency - 1``
    congruent to ``(q - 1) mod d``, with the source able to transmit from
    slot 0 (``a(root) = -1``).  Subsequent packets of the same tree arrive
    exactly ``d`` slots apart.
    """
    d = tree.degree
    arrivals: dict[int, int] = {}
    for position in range(1, tree.size + 1):
        parent = pos.parent_position(position, d)
        parent_arrival = -1 if parent == pos.ROOT else arrivals[parent]
        target = (position - 1) % d
        # Smallest send slot s > parent_arrival with s ≡ target (mod d).
        send = parent_arrival + 1 + ((target - parent_arrival - 1) % d)
        arrivals[position] = send + latency - 1
    return arrivals


def arrival_trace(
    forest: MultiTreeForest,
    num_packets: int,
    params: ScheduleParams = ScheduleParams(),
) -> dict[int, dict[int, int]]:
    """Analytic arrival traces: node -> (packet -> arrival slot).

    Equivalent to running the packet-level simulator but computed in closed
    form from the first-arrival recurrence; used for large parameter sweeps
    (Figure 4) and cross-validated against the engine in the test suite.
    Only real nodes are included.
    """
    if num_packets < 1:
        raise ScheduleError(f"num_packets must be positive, got {num_packets}")
    d = forest.degree
    shift = _shift(params, d)
    traces: dict[int, dict[int, int]] = {n: {} for n in forest.real_nodes}
    for tree in forest.trees:
        first = first_arrival_slots(tree, latency=params.latency)
        k = tree.index
        for node in forest.real_nodes:
            base = first[tree.position_of(node)] + shift
            trace = traces[node]
            packet = k
            slot = base
            while packet < num_packets:
                trace[packet] = slot
                packet += d
                slot += d
    return traces


def slot_transmissions(
    forest: MultiTreeForest,
    slot: int,
    params: ScheduleParams = ScheduleParams(),
) -> list[Transmission]:
    """All transmissions initiated during ``slot`` under the round-robin schedule.

    Transmissions to dummy positions are suppressed (dummies do not exist in
    the real system); transmissions *from* dummy positions never occur because
    dummies are leaves.
    """
    d = forest.degree
    shift = _shift(params, d)
    if slot < shift:
        return []
    t = slot - shift
    r = t % d
    m = t // d
    out: list[Transmission] = []
    for tree in forest.trees:
        k = tree.index
        first = _first_arrivals_cached(tree, params.latency)
        # Source send: packet k + m*d to child index r (position r + 1).
        target = tree.node_at(r + 1)
        if not forest.is_dummy(target):
            out.append(
                Transmission(
                    slot=slot,
                    sender=SOURCE_ID,
                    receiver=target,
                    packet=k + m * d,
                    latency=params.latency,
                    tree=k,
                )
            )
        # Interior forwards: most recent tree-k packet received before slot t.
        for position in range(1, tree.interior + 1):
            a0 = first[position]
            if t <= a0:
                continue  # nothing received yet
            rounds = (t - 1 - a0) // d  # newest packet fully received by t-1
            packet = k + rounds * d
            child_position = d * position + 1 + r
            child = tree.node_at(child_position)
            if forest.is_dummy(child):
                continue
            sender = tree.node_at(position)
            out.append(
                Transmission(
                    slot=slot,
                    sender=sender,
                    receiver=child,
                    packet=packet,
                    latency=params.latency,
                    tree=k,
                )
            )
    return out


_FIRST_ARRIVAL_CACHE: dict[tuple[int, int, tuple[int, ...], int], dict[int, int]] = {}


def _first_arrivals_cached(tree: StreamTree, latency: int) -> dict[int, int]:
    key = (tree.index, tree.degree, tree.layout, latency)
    cached = _FIRST_ARRIVAL_CACHE.get(key)
    if cached is None:
        cached = first_arrival_slots(tree, latency=latency)
        if len(_FIRST_ARRIVAL_CACHE) > 256:  # bound memory across sweeps
            _FIRST_ARRIVAL_CACHE.clear()
        _FIRST_ARRIVAL_CACHE[key] = cached
    return cached


def pipelined_live_collisions(forest: MultiTreeForest) -> int:
    """Receive collisions caused by the paper's *pipelined* live variant.

    That variant shifts tree ``T_k``'s entire schedule by ``k`` slots so the
    source never sends an ungenerated packet.  Position ``q`` of ``T_k`` then
    receives in slots ``≡ q - 1 + k (mod d)``; two trees may map the same node
    to the same residue, forcing two receptions in one slot.  Returns the
    number of (node, residue) conflicts — 0 would mean the variant is safe for
    this forest, a positive count reproduces the paper's remark that the
    pipelined schedule "is not easy to analyze".
    """
    d = forest.degree
    collisions = 0
    for node in forest.real_nodes:
        residues = Counter(
            (tree.position_of(node) - 1 + tree.index) % d for tree in forest.trees
        )
        collisions += sum(count - 1 for count in residues.values() if count > 1)
    return collisions
