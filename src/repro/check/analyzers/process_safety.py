"""REP005 — shared-state mutation reachable from process-pool workers.

:class:`~repro.exec.executor.SweepExecutor` ships task functions into a
``ProcessPoolExecutor``.  Under ``fork`` every worker inherits a copy of
module globals; under ``spawn`` they are re-imported.  Either way, a
worker-reachable function that *writes* module-level state is a latent
race/correctness bug: the write silently diverges per process, never
reaches the parent, and — in threaded fallbacks — can genuinely race.
Results must flow back through return values and registry snapshots, not
through globals.

The pass works in three steps over the project model:

1. **Roots.**  A function is *worker-shipped* when it is the first
   positional argument of an ``<executor>.map(fn, ...)`` call whose
   receiver was bound (assignment or ``with`` item) to a
   ``SweepExecutor(...)`` / ``ProcessPoolExecutor(...)`` construction in
   the same enclosing function; when it is the ``initializer=`` of a
   ``ProcessPoolExecutor``; or when it is wrapped in ``partial(fn, ...)``
   inside a module that instantiates ``ProcessPoolExecutor`` (the
   executor's own task-wrapping idiom).  Indirection the resolver cannot
   see (callables stored in containers, methods) is out of scope.
2. **Closure.**  Reachability is the transitive closure of resolvable
   calls (same-module names, ``from X import f`` bindings, and
   ``module.f`` attribute calls on imported project modules).
3. **Writes.**  Inside every reachable function the pass flags: writes to
   declared ``global`` names; attribute/subscript assignment through a
   module-level binding; and mutating method calls (``append``/``update``/
   ``clear``/...) on module-level *container* bindings.

Deliberate per-process state — initializer-installed payload slots,
worker-local span buffers, thread-local registry swaps — is exempted at
the write site with a line pragma and a justifying comment, never
silently.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.check.lint import LintViolation
from repro.check.model import FunctionInfo, ModuleInfo, ProjectModel

__all__ = ["RULE", "DESCRIPTION", "analyze", "worker_roots"]

RULE = "REP005"
DESCRIPTION = (
    "write to module/class-level shared state from a function reachable "
    "from a process-pool worker entry point"
)

#: Executor classes whose ``.map``/``initializer=`` ship functions.
_POOL_CLASSES = frozenset({"SweepExecutor", "ProcessPoolExecutor"})

#: In-place mutators on the builtin containers (list/dict/set/deque).
_MUTATOR_METHODS = frozenset(
    {"append", "extend", "insert", "add", "update", "clear", "pop",
     "popitem", "setdefault", "remove", "discard", "sort", "reverse",
     "appendleft", "extendleft"}
)


def _callee_name(func: ast.expr) -> str | None:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _pool_bound_names(fn_node: ast.AST) -> set[str]:
    """Local names bound to a pool-class construction inside ``fn_node``."""
    bound: set[str] = set()
    for node in ast.walk(fn_node):
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            if _callee_name(node.value.func) in _POOL_CLASSES:
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        bound.add(target.id)
        elif isinstance(node, ast.withitem):
            expr = node.context_expr
            if (
                isinstance(expr, ast.Call)
                and _callee_name(expr.func) in _POOL_CLASSES
                and isinstance(node.optional_vars, ast.Name)
            ):
                bound.add(node.optional_vars.id)
    return bound


def _partial_aliases(fn_node: ast.AST) -> dict[str, str]:
    """Local ``name = partial(f, ...)`` bindings -> referenced callable."""
    aliases: dict[str, str] = {}
    for node in ast.walk(fn_node):
        value: ast.expr | None = None
        target: ast.expr | None = None
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            value, target = node.value, node.targets[0]
        elif isinstance(node, ast.AnnAssign):
            value, target = node.value, node.target
        if (
            value is not None
            and isinstance(target, ast.Name)
            and isinstance(value, ast.Call)
            and _callee_name(value.func) == "partial"
            and value.args
            and isinstance(value.args[0], ast.Name)
        ):
            aliases[target.id] = value.args[0].id
    return aliases


def worker_roots(model: ProjectModel) -> dict[tuple[str, str], str]:
    """Worker-shipped entry points: ``(module, qualname) -> how shipped``."""
    roots: dict[tuple[str, str], str] = {}

    def add_root(module: ModuleInfo, name: str, how: str) -> None:
        resolved = model.resolve_function(module, name)
        if resolved is None:
            return
        target_module, fn = resolved
        roots.setdefault((target_module.name, fn.qualname), how)

    for module in model:
        module_has_pool = any(
            isinstance(node, ast.Call)
            and _callee_name(node.func) == "ProcessPoolExecutor"
            for node in ast.walk(module.tree)
        )
        for fn in module.functions.values():
            pool_names = _pool_bound_names(fn.node)
            partials = _partial_aliases(fn.node)
            for node in ast.walk(fn.node):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                # <pool>.map(worker, ...)
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr == "map"
                    and isinstance(func.value, ast.Name)
                    and func.value.id in pool_names
                    and node.args
                ):
                    first = node.args[0]
                    if isinstance(first, ast.Name):
                        add_root(
                            module, partials.get(first.id, first.id),
                            f"mapped in {module.name}:{fn.qualname}",
                        )
                # ProcessPoolExecutor(initializer=f)
                if _callee_name(func) == "ProcessPoolExecutor":
                    for kw in node.keywords:
                        if kw.arg == "initializer" and isinstance(
                            kw.value, ast.Name
                        ):
                            add_root(
                                module, kw.value.id,
                                f"pool initializer in {module.name}",
                            )
                # partial(f, ...) inside a pool-owning module: the
                # executor's own task-wrapping idiom ships the result.
                if (
                    module_has_pool
                    and _callee_name(func) == "partial"
                    and node.args
                    and isinstance(node.args[0], ast.Name)
                ):
                    add_root(
                        module, node.args[0].id,
                        f"partial-wrapped in {module.name}:{fn.qualname}",
                    )
    return roots


def _resolvable_callees(
    model: ProjectModel, module: ModuleInfo, fn: FunctionInfo
) -> set[tuple[str, str]]:
    """Callees of ``fn`` the resolver can pin to project functions."""
    callees: set[tuple[str, str]] = set()
    for node in ast.walk(fn.node):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Name):
            resolved = model.resolve_function(module, func.id)
            if resolved is not None:
                callees.add((resolved[0].name, resolved[1].qualname))
        elif isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            target = model.resolve_module_alias(module, func.value.id)
            if target is not None:
                fn_info = target.functions.get(func.attr)
                if fn_info is not None and fn_info.owner is None:
                    callees.add((target.name, fn_info.qualname))
    return callees


def reachable_from_workers(
    model: ProjectModel,
) -> dict[tuple[str, str], str]:
    """Transitive closure of :func:`worker_roots` over resolvable calls.

    Maps ``(module, qualname)`` to the root's "how shipped" provenance so
    findings can say *why* a function is considered worker code.
    """
    roots = worker_roots(model)
    reached: dict[tuple[str, str], str] = dict(roots)
    frontier = list(roots)
    while frontier:
        module_name, qualname = frontier.pop()
        module = model.get(module_name)
        if module is None:
            continue
        fn = module.functions.get(qualname)
        if fn is None:
            continue
        how = reached[(module_name, qualname)]
        for callee in _resolvable_callees(model, module, fn):
            if callee not in reached:
                reached[callee] = how
                frontier.append(callee)
    return reached


def _binding_names(target: ast.expr) -> Iterator[str]:
    """Names a target expression *binds* — ``x.attr = v`` binds nothing."""
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _binding_names(element)
    elif isinstance(target, ast.Starred):
        yield from _binding_names(target.value)


def _local_bindings(fn_node: ast.AST) -> set[str]:
    """Names bound locally inside the function (params, assigns, targets)."""
    local: set[str] = set()
    for node in ast.walk(fn_node):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            args = node.args
            for arg in (
                *args.posonlyargs, *args.args, *args.kwonlyargs,
                *filter(None, (args.vararg, args.kwarg)),
            ):
                local.add(arg.arg)
        if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                local.update(_binding_names(target))
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            local.update(_binding_names(node.target))
        elif isinstance(node, ast.withitem) and node.optional_vars is not None:
            local.update(_binding_names(node.optional_vars))
        elif isinstance(node, ast.ExceptHandler) and node.name:
            local.add(node.name)
        elif isinstance(node, ast.comprehension):
            local.update(_binding_names(node.target))
    return local


def _root_name(expr: ast.expr) -> str | None:
    """The base ``Name`` of an attribute/subscript chain, if any."""
    while isinstance(expr, (ast.Attribute, ast.Subscript)):
        expr = expr.value
    return expr.id if isinstance(expr, ast.Name) else None


def _shared_writes(
    module: ModuleInfo, fn: FunctionInfo, how: str
) -> list[LintViolation]:
    node = fn.node
    declared_global: set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Global):
            declared_global.update(sub.names)
    local = _local_bindings(node) - declared_global
    module_level = module.bindings

    def note(target: ast.AST, message: str) -> LintViolation:
        return LintViolation(
            rule=RULE, path=module.path,
            line=getattr(target, "lineno", fn.lineno),
            col=getattr(target, "col_offset", 0),
            message=f"{message} in worker-reachable '{fn.qualname}' ({how}); "
            "ship results via return values / registry snapshots",
        )

    violations: list[LintViolation] = []
    for sub in ast.walk(node):
        if isinstance(sub, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (
                sub.targets if isinstance(sub, ast.Assign) else [sub.target]
            )
            for target in targets:
                if isinstance(target, ast.Name):
                    if target.id in declared_global:
                        violations.append(note(
                            sub, f"assignment to module global '{target.id}'"
                        ))
                elif isinstance(target, (ast.Attribute, ast.Subscript)):
                    root = _root_name(target)
                    if (
                        root is not None
                        and root not in local
                        and root in module_level
                    ):
                        violations.append(note(
                            sub,
                            f"mutation of module-level object '{root}' "
                            "(attribute/subscript assignment)",
                        ))
        elif isinstance(sub, ast.Call):
            func = sub.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _MUTATOR_METHODS
                and isinstance(func.value, ast.Name)
                and func.value.id not in local
                and func.value.id in module.mutable_bindings
            ):
                violations.append(note(
                    sub,
                    f"mutating call '{func.value.id}.{func.attr}()' on a "
                    "module-level container",
                ))
    return violations


def analyze(model: ProjectModel) -> list[LintViolation]:
    """Flag shared-state writes in every worker-reachable function."""
    violations: list[LintViolation] = []
    for (module_name, qualname), how in sorted(
        reachable_from_workers(model).items()
    ):
        module = model.get(module_name)
        if module is None:
            continue
        fn = module.functions.get(qualname)
        if fn is None:
            continue
        violations.extend(_shared_writes(module, fn, how))
    return violations
