"""Future work implemented: hypercube membership dynamics.

The paper defers node dynamics for the hypercube scheme to future work.  This
bench quantifies the tension that makes it hard:

* a cube has **zero capacity slack** — any unrepaired vacancy starves its
  neighbors (measured via ghost vertices), so repairs must be immediate;
* immediate repair then trades *relocations* (fill-from-tail: at most one per
  event, but delays drift) against *delay optimality* (rebuild: optimal
  delays, but bulk relocations at decomposition boundaries).
"""

from __future__ import annotations

import numpy as np
from conftest import report

from repro.hypercube.cube import CubeExchange
from repro.hypercube.dynamics import CascadeMembership
from repro.reporting.tables import format_table


def ghost_starvation_rows():
    rows = []
    for ghosts in (frozenset(), frozenset({3}), frozenset({1})):
        cube = CubeExchange(3, ghosts=ghosts)
        arrivals = {v: {} for v in range(1, 8) if v not in ghosts}
        for t in range(90):
            for tr in cube.step(inject=t):
                arrivals[tr.receiver].setdefault(tr.packet, t)
            port = 1 << (t % 3)
            if port in arrivals:
                arrivals[port].setdefault(t, t)

        def lag(upto):
            worst = 0
            for arr in arrivals.values():
                f = -1
                while f + 1 in arr and arr[f + 1] <= upto:
                    f += 1
                worst = max(worst, upto - f)
            return worst

        label = "none" if not ghosts else f"vertex {min(ghosts)}"
        rows.append((label, lag(40), lag(80)))
    return rows


def churn_strategy_rows(seed=11, events=40):
    rng = np.random.default_rng(seed)
    plans = []
    for _ in range(events):
        plans.append("leave" if rng.random() < 0.5 else "join")
    rows = []
    for strategy in ("fill-from-tail", "rebuild"):
        membership = CascadeMembership(80, strategy=strategy)
        relocations = 0
        worst_penalty = 0
        for op in plans:
            if op == "leave" and membership.num_nodes > 2:
                victim = int(rng.choice(sorted(membership.members())))
                event = membership.leave(victim)
            else:
                _, event = membership.join()
            relocations += len(event.relocated)
            worst_penalty = max(worst_penalty, membership.delay_penalty())
        membership.verify()
        rows.append((strategy, events, relocations, worst_penalty,
                     membership.delay_penalty()))
    return rows


def test_hypercube_dynamics_ablation(benchmark):
    ghost_rows, churn_rows = benchmark.pedantic(
        lambda: (ghost_starvation_rows(), churn_strategy_rows()),
        rounds=1, iterations=1,
    )
    # No ghost: lag constant (= k).  Any ghost: lag grows between checkpoints.
    base = ghost_rows[0]
    assert base[1] == base[2]
    for row in ghost_rows[1:]:
        assert row[2] > row[1]
    by_strategy = {r[0]: r for r in churn_rows}
    assert by_strategy["fill-from-tail"][2] < by_strategy["rebuild"][2]
    assert by_strategy["rebuild"][3] == 0

    text = "\n".join(
        [
            format_table(
                ["vacancy", "worst lag @ slot 40", "worst lag @ slot 80"],
                ghost_rows,
                title=(
                    "Zero slack: an unrepaired vacancy starves neighbors "
                    "(k=3 cube; lag = slots behind a full-rate stream)"
                ),
            ),
            "",
            format_table(
                ["strategy", "events", "total relocations", "worst delay penalty",
                 "final delay penalty"],
                churn_rows,
                title="Repair strategies under 40 churn events (start N=80)",
            ),
        ]
    )
    report("ablation_hc_dynamics", text)
