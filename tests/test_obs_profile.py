"""Tests for the per-phase profiling hooks (repro.obs.profile)."""

from __future__ import annotations

import pickle

import pytest

from repro.obs.profile import PhaseProfiler, PhaseStats, Timer, format_profile_table


class TestPhaseStats:
    def test_record(self):
        s = PhaseStats()
        s.record(0.5)
        s.record(1.5)
        assert (s.count, s.total, s.min, s.max) == (2, 2.0, 0.5, 1.5)
        assert s.mean == 1.0

    def test_merge(self):
        a, b = PhaseStats(), PhaseStats()
        a.record(1.0)
        b.record(3.0)
        a.merge(b)
        assert (a.count, a.total, a.min, a.max) == (2, 4.0, 1.0, 3.0)

    def test_empty_mean(self):
        assert PhaseStats().mean == 0.0


class TestPhaseProfiler:
    def test_phase_scope_records(self):
        p = PhaseProfiler()
        with p.phase("validate"):
            pass
        with p.phase("validate"):
            pass
        assert p.stats["validate"].count == 2
        assert p.stats["validate"].total >= 0.0
        assert p.total_time == pytest.approx(p.stats["validate"].total)

    def test_record_external_sample(self):
        p = PhaseProfiler()
        p.record("io", 0.25)
        assert p.stats["io"].total == 0.25

    def test_snapshot_picklable_and_merge(self):
        a = PhaseProfiler()
        a.record("x", 1.0)
        snap = a.snapshot()
        assert pickle.loads(pickle.dumps(snap)) == snap

        b = PhaseProfiler()
        b.record("x", 2.0)
        b.record("y", 0.5)
        a.merge(b)  # profiler form
        a.merge(snap)  # snapshot form
        assert a.stats["x"].count == 3
        assert a.stats["x"].total == pytest.approx(4.0)
        assert a.stats["y"].count == 1

    def test_rows_sorted_by_total(self):
        p = PhaseProfiler()
        p.record("fast", 0.1)
        p.record("slow", 0.9)
        rows = p.rows()
        assert [r["phase"] for r in rows] == ["slow", "fast"]
        assert rows[0]["share"] == "90.0%"


class TestTimer:
    def test_measures_elapsed(self):
        with Timer() as t:
            sum(range(1000))
        assert t.elapsed > 0.0


class TestFormatTable:
    def test_empty(self):
        assert "(no samples)" in format_profile_table(PhaseProfiler())

    def test_table_contains_phases(self):
        p = PhaseProfiler()
        p.record("deliver", 0.5)
        out = format_profile_table(p, title="engine phases")
        assert out.splitlines()[0] == "engine phases"
        assert "deliver" in out
        assert "share" in out
