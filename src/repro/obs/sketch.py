"""Mergeable bounded-memory quantile sketch (log-bucketed histogram).

Fleet-scale SLO reporting needs percentiles over millions of pooled
per-node observations without materializing them.  :class:`QuantileSketch`
is a DDSketch-style estimator specialized to the non-negative integer
populations this reproduction measures (playback delays, buffer peaks,
startup delays, all in slots):

* **Exact small-count mode** — while the number of *distinct* observed
  values stays within ``exact_limit``, the sketch stores an exact
  ``value -> count`` map and every quantile query returns the exact pooled
  nearest-rank answer (byte-identical to
  :func:`repro.service.slo.pooled_percentile`).
* **Log-bucketed mode** — past the limit the map collapses into
  logarithmic buckets with ratio ``gamma = (1 + a) / (1 - a)`` where
  ``a = relative_error``.  A value ``v > 0`` lands in bucket
  ``i = ceil(log_gamma(v))`` covering ``(gamma**(i-1), gamma**i]``; the
  bucket's representative ``2 * gamma**i / (gamma + 1)`` is within
  ``a * v`` of every value in the bucket.  Zero is counted exactly in its
  own bucket.

**Error bound.**  For any rank-based query (:meth:`quantile`,
:meth:`quantile_at_rank`), the returned estimate ``x`` satisfies
``|x - x*| <= relative_error * x*`` where ``x*`` is the exact nearest-rank
answer over the observed population — a *relative* guarantee, independent
of how many values were observed or how the observations were sharded.
``relative_error=0`` selects a permanently-exact sketch (memory then grows
with the number of distinct values, which for slot-valued populations is
bounded by the schedule horizon).

**Merge.**  Two sketches with the same ``relative_error`` merge by bucket
(or exact-map) addition; merging is associative and commutative, so worker
shards can be folded in any order with the same result.  :meth:`to_dict` /
:meth:`from_dict` round-trip through JSON for cross-process snapshots
(:meth:`repro.obs.registry.MetricsRegistry.snapshot`).

Memory is ``O(exact_limit + log(max/min) / log(gamma))`` — bounded
regardless of population size once collapsed.
"""

from __future__ import annotations

import math
from typing import Any

__all__ = ["QuantileSketch", "DEFAULT_RELATIVE_ERROR", "DEFAULT_EXACT_LIMIT"]

#: Default relative-error bound: quantile estimates within 1% of exact.
DEFAULT_RELATIVE_ERROR = 0.01

#: Default distinct-value budget of the exact small-count mode.
DEFAULT_EXACT_LIMIT = 256

_INDEX_EPS = 1e-9  # absorbs float error so v == gamma**i maps to bucket i


class QuantileSketch:
    """Mergeable quantile sketch over non-negative values.

    Args:
        relative_error: the documented relative error bound ``a`` of
            bucketed quantile estimates; ``0`` keeps the sketch exact
            forever (never collapses).
        exact_limit: distinct-value budget of the exact mode (ignored when
            ``relative_error`` is 0).
    """

    __slots__ = (
        "relative_error", "exact_limit", "count", "sum", "min", "max",
        "_gamma", "_log_gamma", "_exact", "_buckets", "_zero",
    )

    def __init__(
        self,
        relative_error: float = DEFAULT_RELATIVE_ERROR,
        *,
        exact_limit: int = DEFAULT_EXACT_LIMIT,
    ) -> None:
        if not 0 <= relative_error < 1:
            raise ValueError(
                f"relative_error must be in [0, 1), got {relative_error}"
            )
        if exact_limit < 1:
            raise ValueError(f"exact_limit must be >= 1, got {exact_limit}")
        self.relative_error = relative_error
        self.exact_limit = exact_limit
        self.count = 0
        self.sum = 0.0
        self.min: float | None = None
        self.max: float | None = None
        if relative_error > 0:
            self._gamma = (1 + relative_error) / (1 - relative_error)
            self._log_gamma = math.log(self._gamma)
        else:
            self._gamma = 0.0
            self._log_gamma = 0.0
        #: value -> count while exact; None once collapsed to buckets.
        self._exact: dict[float, int] | None = {}
        self._buckets: dict[int, int] = {}
        self._zero = 0

    # ------------------------------------------------------------------ state
    @property
    def is_exact(self) -> bool:
        """True while every query is exact (small-count mode)."""
        return self._exact is not None

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:
        mode = "exact" if self.is_exact else f"~{self.relative_error:g}"
        return f"QuantileSketch(count={self.count}, mode={mode})"

    # ---------------------------------------------------------------- updates
    def add(self, value: float, count: int = 1) -> None:
        """Observe ``value`` ``count`` times."""
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        if value < 0:
            raise ValueError(f"sketch values must be >= 0, got {value}")
        self.count += count
        self.sum += value * count
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        if self._exact is not None:
            self._exact[value] = self._exact.get(value, 0) + count
            if (
                self.relative_error > 0
                and len(self._exact) > self.exact_limit
            ):
                self._collapse()
        elif value == 0:
            self._zero += count
        else:
            index = self._bucket_index(value)
            self._buckets[index] = self._buckets.get(index, 0) + count

    def observe(self, value: float) -> None:
        """Histogram-compatible alias for :meth:`add` with count 1."""
        self.add(value)

    def _bucket_index(self, value: float) -> int:
        return math.ceil(math.log(value) / self._log_gamma - _INDEX_EPS)

    def _bucket_value(self, index: int) -> float:
        return 2.0 * self._gamma**index / (self._gamma + 1.0)

    def _collapse(self) -> None:
        """Fold the exact map into log buckets (exact -> bucketed mode)."""
        exact = self._exact
        if exact is None:  # pragma: no cover - callers check first
            return
        self._exact = None
        for value, count in exact.items():
            if value == 0:
                self._zero += count
            else:
                index = self._bucket_index(value)
                self._buckets[index] = self._buckets.get(index, 0) + count

    # ------------------------------------------------------------------ merge
    def merge(self, other: "QuantileSketch") -> None:
        """Fold ``other`` into this sketch (associative, commutative)."""
        if other.relative_error != self.relative_error:
            raise ValueError(
                f"cannot merge sketches with different error bounds "
                f"({self.relative_error} vs {other.relative_error})"
            )
        if other.count == 0:
            return
        self.count += other.count
        self.sum += other.sum
        if other.min is not None:
            self.min = other.min if self.min is None else min(self.min, other.min)
        if other.max is not None:
            self.max = other.max if self.max is None else max(self.max, other.max)
        if self._exact is not None and other._exact is not None:
            for value, count in other._exact.items():
                self._exact[value] = self._exact.get(value, 0) + count
            if (
                self.relative_error > 0
                and len(self._exact) > self.exact_limit
            ):
                self._collapse()
            return
        if self._exact is not None:
            self._collapse()
        if other._exact is not None:
            for value, count in other._exact.items():
                if value == 0:
                    self._zero += count
                else:
                    index = self._bucket_index(value)
                    self._buckets[index] = self._buckets.get(index, 0) + count
        else:
            self._zero += other._zero
            for index, count in other._buckets.items():
                self._buckets[index] = self._buckets.get(index, 0) + count

    # ---------------------------------------------------------------- queries
    def quantile(self, q: float) -> float:
        """Nearest-rank ``q``-th percentile estimate (``q`` in [0, 100]).

        Exact in small-count mode; within ``relative_error`` of the exact
        pooled nearest-rank value once collapsed.
        """
        if not 0 <= q <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        if self.count == 0:
            raise ValueError("empty sketch has no percentiles")
        rank = max(1, -(-int(q * self.count) // 100))  # ceil, min 1
        return self.quantile_at_rank(rank)

    def quantile_at_rank(self, rank: int) -> float:
        """Value estimate at 1-based ``rank`` of the sorted population."""
        if not 1 <= rank <= self.count:
            raise ValueError(
                f"rank must be in [1, {self.count}], got {rank}"
            )
        seen = 0
        if self._exact is not None:
            for value in sorted(self._exact):
                seen += self._exact[value]
                if seen >= rank:
                    return value
            return max(self._exact)  # pragma: no cover - rank <= count
        if self._zero:
            seen += self._zero
            if seen >= rank:
                return 0.0
        for index in sorted(self._buckets):
            seen += self._buckets[index]
            if seen >= rank:
                return self._bucket_value(index)
        # rank <= count by construction, so the walk always returns above.
        raise RuntimeError("sketch invariant violated")  # pragma: no cover

    # -------------------------------------------------------- serialization
    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable snapshot (inverse of :meth:`from_dict`)."""
        payload: dict[str, Any] = {
            "relative_error": self.relative_error,
            "exact_limit": self.exact_limit,
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
        }
        if self._exact is not None:
            payload["exact"] = sorted(self._exact.items())
        else:
            payload["zero"] = self._zero
            payload["buckets"] = sorted(self._buckets.items())
        return payload

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "QuantileSketch":
        """Rebuild a sketch from :meth:`to_dict` output (JSON round-trip)."""
        sketch = cls(
            payload["relative_error"], exact_limit=payload["exact_limit"]
        )
        sketch.count = payload["count"]
        sketch.sum = payload["sum"]
        sketch.min = payload["min"]
        sketch.max = payload["max"]
        if "exact" in payload:
            sketch._exact = {value: count for value, count in payload["exact"]}
        else:
            sketch._exact = None
            sketch._zero = payload.get("zero", 0)
            sketch._buckets = {
                int(index): count for index, count in payload.get("buckets", ())
            }
        return sketch
