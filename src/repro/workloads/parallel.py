"""Process-parallel parameter sweeps (legacy surface).

Large sweeps (Figure 4 at fine granularity, Table 1 matrices) decompose
perfectly across processes — each (N, d) cell is independent.  The actual
runner now lives in :mod:`repro.exec.executor`
(:class:`~repro.exec.executor.SweepExecutor`), which adds per-worker payload
shipping and graceful serial degradation; this module keeps the original
:func:`parallel_sweep` signature as a deprecated wrapper over it, plus the
module-level cell evaluators the Figure 4 path uses (module scope so they
pickle under ``spawn`` as well as ``fork``).

Instrumentation crosses the process boundary as before: each task runs
against a fresh :class:`~repro.obs.MetricsRegistry` installed as the
thread-local :func:`~repro.obs.active_registry`, its picklable snapshot rides
back with the result, and the parent merges every snapshot into the registry
the caller passed — so worker counters (cells evaluated, delay histograms)
aggregate exactly as if the sweep had run in-process.
"""

from __future__ import annotations

from repro.obs.registry import MetricsRegistry, active_registry
from repro.exec.executor import ExecutorPolicy, SweepExecutor, default_workers

__all__ = ["parallel_sweep", "multi_tree_cell", "cascade_cell", "default_workers"]


def multi_tree_cell(task: tuple[int, int]) -> tuple[int, int, int]:
    """Worker: worst-case multi-tree delay for one ``(N, d)`` cell."""
    n, d = task
    from repro.trees.vectorized import worst_case_delay_fast

    delay = worst_case_delay_fast(n, d)
    registry = active_registry()
    registry.counter("sweep.cells", scheme="multi-tree", degree=str(d)).inc()
    registry.histogram("sweep.delay", scheme="multi-tree", degree=str(d)).observe(delay)
    return n, d, delay


def cascade_cell(task: tuple[int]) -> tuple[int, int, float]:
    """Worker: hypercube cascade worst/average delay for one ``N``."""
    (n,) = task
    from repro.hypercube.cascade import expected_average_delay, expected_worst_delay

    worst = expected_worst_delay(n)
    registry = active_registry()
    registry.counter("sweep.cells", scheme="hypercube-cascade").inc()
    registry.histogram("sweep.delay", scheme="hypercube-cascade").observe(worst)
    return n, worst, expected_average_delay(n)


def parallel_sweep(
    worker,
    tasks,
    *,
    max_workers: int | None = None,
    chunksize: int = 8,
    registry: MetricsRegistry | None = None,
):
    """Deprecated wrapper over :class:`~repro.exec.executor.SweepExecutor`.

    Evaluates ``worker`` over ``tasks`` across processes, order-preserving,
    with the original semantics (``max_workers=1`` or tiny grids run
    in-process; worker registry snapshots merge into ``registry``).  Prefer
    constructing a :class:`~repro.exec.executor.SweepExecutor` directly, or
    ``repro.run(ExperimentSpec(kind="sweep", ...))`` for replay sweeps.
    """
    from repro.experiments import deprecated_entry_point

    deprecated_entry_point(
        "parallel_sweep",
        'repro.exec.SweepExecutor.map or repro.run(ExperimentSpec(kind="sweep", ...))',
    )
    policy = ExecutorPolicy(max_workers=max_workers, chunksize=chunksize)
    return SweepExecutor(policy, registry=registry).map(worker, tasks)
