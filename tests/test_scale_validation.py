"""Large-scale end-to-end validation runs.

One order of magnitude beyond the rest of the suite: full packet-level
simulation with every per-slot constraint checked, at populations matching
the paper's Figure 4 axis.
"""

from __future__ import annotations

import pytest

from repro.core.engine import simulate
from repro.core.metrics import collect_metrics
from repro.hypercube.cascade import expected_worst_delay
from repro.hypercube.protocol import HypercubeCascadeProtocol
from repro.trees import MultiTreeProtocol
from repro.trees.analysis import theorem2_bound, worst_case_delay


@pytest.mark.parametrize("construction", ["structured", "greedy"])
def test_thousand_node_multi_tree(construction):
    n, d = 1022, 2
    protocol = MultiTreeProtocol(n, d, construction=construction)
    packets = 2 * d
    trace = simulate(protocol, protocol.slots_for_packets(packets))
    metrics = collect_metrics(trace, num_packets=packets)
    assert metrics.num_nodes == n
    assert metrics.max_startup_delay <= theorem2_bound(n, d)
    assert metrics.max_neighbors <= 2 * d
    # Complete tree: the analytic worst case is exactly h*d = 18.
    assert worst_case_delay(protocol.forest) == 18


def test_thousand_node_hypercube_cascade():
    n = 1023  # single 10-cube
    protocol = HypercubeCascadeProtocol(n)
    trace = simulate(protocol, protocol.slots_for_packets(6))
    metrics = collect_metrics(trace, num_packets=6)
    assert metrics.num_nodes == n
    assert metrics.max_startup_delay == expected_worst_delay(n) == 11
    assert metrics.max_buffer <= 2
    assert metrics.max_neighbors <= 10


def test_seven_hundred_node_cascade_chain():
    n = 700  # multi-cube chain
    protocol = HypercubeCascadeProtocol(n)
    trace = simulate(protocol, protocol.slots_for_packets(6))
    metrics = collect_metrics(trace, num_packets=6)
    assert metrics.max_startup_delay == expected_worst_delay(n)
    assert metrics.max_buffer <= 2
