"""Trace-level metrics: the paper's four QoS quantities, plus repair-aware ones.

Table 1 of the paper compares schemes on four axes — maximum playback delay,
average playback delay, buffer size, and number of neighbors.  This module
computes all four from a :class:`~repro.core.engine.SimTrace`.

The repair subsystem (:mod:`repro.repair`) extends the same trace-level
approach to lossy runs, where the paper's metrics are undefined (a node with
a permanent hole has no hiccup-free startup delay at all):
:func:`summarize_lossy_playback` scores playback over whatever arrived, and
:func:`collect_repair_metrics` aggregates the repair tradeoff curve —
residual loss, recovery latency distribution, goodput, and the effective
playback delay/buffer price paid for repair.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass
from statistics import mean

from repro.core.engine import SimTrace
from repro.core.playback import PlaybackSummary, summarize_playback

__all__ = [
    "SchemeMetrics",
    "collect_metrics",
    "truncate_arrivals",
    "LossyPlaybackSummary",
    "summarize_lossy_playback",
    "RepairMetrics",
    "collect_repair_metrics",
    "QoEMetrics",
    "collect_qoe",
]


def __getattr__(name: str):
    # Lazy re-export: the ABR subsystem's QoE metrics belong in the metrics
    # namespace, but importing repro.abr here eagerly would cycle (abr's
    # capacity hook imports the engine, which this module imports too).
    if name in ("QoEMetrics", "collect_qoe"):
        from repro.abr import qoe

        return getattr(qoe, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


@dataclass(frozen=True, slots=True)
class SchemeMetrics:
    """Aggregate QoS metrics for one simulated scheme (one Table 1 row).

    Attributes:
        num_nodes: receivers measured.
        max_startup_delay: worst-case playback delay over nodes (slots).
        avg_startup_delay: mean playback delay over nodes (slots).
        max_buffer: worst-case peak buffer occupancy over nodes (packets).
        avg_buffer: mean peak buffer occupancy over nodes (packets).
        max_neighbors: worst-case distinct-counterparty count over nodes.
        avg_neighbors: mean distinct-counterparty count over nodes.
        per_node: node id -> :class:`PlaybackSummary`.
    """

    num_nodes: int
    max_startup_delay: int
    avg_startup_delay: float
    max_buffer: int
    avg_buffer: float
    max_neighbors: int
    avg_neighbors: float
    per_node: dict[int, PlaybackSummary]

    def row(self) -> dict[str, float]:
        """Flat dict for table rendering (drops per-node detail)."""
        return {
            "num_nodes": self.num_nodes,
            "max_delay": self.max_startup_delay,
            "avg_delay": round(self.avg_startup_delay, 3),
            "max_buffer": self.max_buffer,
            "avg_buffer": round(self.avg_buffer, 3),
            "max_neighbors": self.max_neighbors,
            "avg_neighbors": round(self.avg_neighbors, 3),
        }


def truncate_arrivals(arrivals: dict[int, int], num_packets: int) -> dict[int, int]:
    """Restrict an arrival trace to the contiguous prefix ``0..num_packets-1``.

    Simulations run for a finite horizon, so the last few packets of each node's
    trace are edge-distorted (later packets have not arrived yet).  Metrics are
    computed over a fixed prefix so all nodes are compared on the same packets.
    """
    if num_packets < 1:
        raise ValueError(f"num_packets must be positive, got {num_packets}")
    out = {p: s for p, s in arrivals.items() if p < num_packets}
    if len(out) != num_packets:
        missing = sorted(set(range(num_packets)) - set(out))[:5]
        raise ValueError(
            f"arrival trace incomplete for prefix of {num_packets} packets; "
            f"missing {missing} — simulate more slots"
        )
    return out


def collect_metrics(trace: SimTrace, *, num_packets: int) -> SchemeMetrics:
    """Compute the Table 1 quantities from a finished simulation trace.

    Args:
        trace: a completed simulation.
        num_packets: the packet prefix over which delays/buffers are measured;
            every node must have received all of packets ``0..num_packets-1``.
    """
    per_node: dict[int, PlaybackSummary] = {}
    neighbors: dict[int, int] = {}
    for nid, state in trace.nodes.items():
        arrivals = truncate_arrivals(state.arrivals, num_packets)
        per_node[nid] = summarize_playback(arrivals)
        neighbors[nid] = len(state.neighbors)

    if not per_node:
        raise ValueError("trace contains no receiver nodes")

    delays = [s.startup_delay for s in per_node.values()]
    buffers = [s.buffer_peak for s in per_node.values()]
    neigh = list(neighbors.values())
    return SchemeMetrics(
        num_nodes=len(per_node),
        max_startup_delay=max(delays),
        avg_startup_delay=mean(delays),
        max_buffer=max(buffers),
        avg_buffer=mean(buffers),
        max_neighbors=max(neigh),
        avg_neighbors=mean(neigh),
        per_node=per_node,
    )


# --------------------------------------------------------------------------
# Repair-aware metrics (lossy runs)
# --------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class LossyPlaybackSummary:
    """Per-node playback metrics when some packets may be missing for good.

    A residual hole means no hiccup-free start exists, so ``startup_delay``
    is the earliest start for which every packet that *did* become available
    meets its deadline — missing packets are skipped (playback keeps
    real-time pace), and are reported separately in ``missing``.

    Attributes:
        startup_delay: earliest start meeting every available deadline.
        buffer_peak: peak end-of-slot occupancy at that start.
        available: packets available (received or repaired) in the prefix.
        missing: residual holes in the measured prefix.
    """

    startup_delay: int
    buffer_peak: int
    available: int
    missing: tuple[int, ...]


def summarize_lossy_playback(
    arrivals: Mapping[int, int], num_packets: int
) -> LossyPlaybackSummary:
    """Loss-tolerant counterpart of :func:`~repro.core.playback.summarize_playback`.

    Args:
        arrivals: packet -> slot the packet became available (direct arrival
            or repair); packets ``>= num_packets`` are ignored.
        num_packets: the measured stream prefix ``0..num_packets-1``.
    """
    if num_packets < 1:
        raise ValueError(f"num_packets must be positive, got {num_packets}")
    avail = {p: s for p, s in arrivals.items() if 0 <= p < num_packets}
    missing = tuple(sorted(set(range(num_packets)) - set(avail)))
    if not avail:
        return LossyPlaybackSummary(0, 0, 0, missing)
    start = max(slot - packet for packet, slot in avail.items()) + 1
    # Buffer occupancy with holes: packet j is consumed at slot
    # start + j - 1 (clamped to its arrival); missing packets never occupy.
    horizon = max(max(avail.values()) + 1, start + num_packets)
    delta = [0] * (horizon + 1)
    for packet, slot in avail.items():
        consume = max(start + packet - 1, slot)
        delta[slot] += 1
        if consume + 1 < horizon:
            delta[consume + 1] -= 1
    peak = running = 0
    for t in range(horizon):
        running += delta[t]
        peak = max(peak, running)
    return LossyPlaybackSummary(start, peak, len(avail), missing)


@dataclass(frozen=True, slots=True)
class RepairMetrics:
    """Aggregate loss/repair metrics for one lossy run (one tradeoff point).

    Attributes:
        num_nodes: receivers measured.
        num_packets: stream prefix measured.
        num_slots: slots simulated (denominator of goodput).
        residual_pairs: ``(node, packet)`` pairs never recovered.
        residual_loss_rate: residual pairs over all measured pairs.
        recovered_pairs: pairs delivered later than the loss-free baseline
            (repaired or knock-on delayed).
        recovery_latency_mean: mean extra slots over the baseline arrival,
            across recovered pairs (0 when nothing was recovered).
        recovery_latency_max: worst extra slots over the baseline arrival.
        recovery_latencies: the full latency distribution (slots late).
        goodput: available data pairs per node per slot.
        max_effective_delay: worst loss-tolerant startup delay over nodes.
        avg_effective_delay: mean loss-tolerant startup delay over nodes.
        max_buffer: worst peak buffer over nodes at those starts.
        avg_buffer: mean peak buffer over nodes.
    """

    num_nodes: int
    num_packets: int
    num_slots: int
    residual_pairs: int
    residual_loss_rate: float
    recovered_pairs: int
    recovery_latency_mean: float
    recovery_latency_max: int
    recovery_latencies: tuple[int, ...]
    goodput: float
    max_effective_delay: int
    avg_effective_delay: float
    max_buffer: int
    avg_buffer: float

    def row(self) -> dict[str, float]:
        """Flat dict for table rendering (drops the latency distribution)."""
        return {
            "num_nodes": self.num_nodes,
            "residual": self.residual_pairs,
            "residual_rate": round(self.residual_loss_rate, 5),
            "recovered": self.recovered_pairs,
            "rec_lat_mean": round(self.recovery_latency_mean, 2),
            "rec_lat_max": self.recovery_latency_max,
            "goodput": round(self.goodput, 4),
            "max_delay": self.max_effective_delay,
            "avg_delay": round(self.avg_effective_delay, 3),
            "max_buffer": self.max_buffer,
            "avg_buffer": round(self.avg_buffer, 3),
        }


def collect_repair_metrics(
    arrivals_by_node: Mapping[int, Mapping[int, int]],
    *,
    num_packets: int,
    num_slots: int,
    baseline: Mapping[int, Mapping[int, int]] | None = None,
) -> RepairMetrics:
    """Aggregate the repair tradeoff metrics over effective arrival traces.

    Args:
        arrivals_by_node: node -> (data packet -> slot available).  For
            retransmission runs this is the trace's raw arrivals; for parity
            runs it is the post-decode effective arrivals.
        num_packets: measured stream prefix.
        num_slots: slots the run simulated.
        baseline: the same protocol's loss-free arrivals (same clock!), used
            to attribute lateness: a pair arriving after its baseline slot
            was recovered, and the difference is its recovery latency.
    """
    if not arrivals_by_node:
        raise ValueError("no receiver traces to measure")
    if num_slots < 1:
        raise ValueError(f"num_slots must be positive, got {num_slots}")
    summaries: dict[int, LossyPlaybackSummary] = {}
    residual = 0
    available = 0
    latencies: list[int] = []
    for node, arrivals in arrivals_by_node.items():
        summary = summarize_lossy_playback(arrivals, num_packets)
        summaries[node] = summary
        residual += len(summary.missing)
        available += summary.available
        if baseline is not None:
            reference = baseline[node]
            for packet, slot in arrivals.items():
                if packet >= num_packets:
                    continue
                base_slot = reference.get(packet)
                if base_slot is not None and slot > base_slot:
                    latencies.append(slot - base_slot)
    num_nodes = len(summaries)
    delays = [s.startup_delay for s in summaries.values()]
    buffers = [s.buffer_peak for s in summaries.values()]
    return RepairMetrics(
        num_nodes=num_nodes,
        num_packets=num_packets,
        num_slots=num_slots,
        residual_pairs=residual,
        residual_loss_rate=residual / (num_nodes * num_packets),
        recovered_pairs=len(latencies),
        recovery_latency_mean=mean(latencies) if latencies else 0.0,
        recovery_latency_max=max(latencies, default=0),
        recovery_latencies=tuple(sorted(latencies)),
        goodput=available / (num_nodes * num_slots),
        max_effective_delay=max(delays),
        avg_effective_delay=mean(delays),
        max_buffer=max(buffers),
        avg_buffer=mean(buffers),
    )
